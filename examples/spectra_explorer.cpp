//===- examples/spectra_explorer.cpp - The determinism/randomness dial -------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// MarQSim's central dial is the convex weight between the fully random
// qDrift matrix and the deterministic-leaning gate-cancellation matrix.
// This example sweeps that dial on a molecular-like workload and prints,
// for each setting:
//   * |lambda_2| — the mixing/convergence indicator of Section 5.4,
//   * the expected CNOTs per transition (Proposition 5.1), and
//   * measured CNOTs and fidelity of a compiled circuit,
// making the paper's trade-off (more determinism = fewer gates but slower
// chain mixing) directly visible.
//
//===----------------------------------------------------------------------===//

#include "core/CNOTCountOracle.h"
#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"
#include "hamgen/Molecular.h"
#include "sim/Fidelity.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace marqsim;

int main() {
  Hamiltonian H = makeMolecularLike(8, 60, 5).rescaledToLambda(12.0)
                      .splitLargeTerms();
  const double T = 0.6, Eps = 0.05;
  std::vector<double> Pi = H.stationaryDistribution();
  std::cout << "Determinism/randomness dial on a molecular-like "
               "Hamiltonian (8 qubits, 60 strings)\n\n";

  TransitionMatrix Pgc = buildGateCancellation(H);
  FidelityEvaluator Eval(H, T, 16);

  CompilerEngine Engine;
  Table Out({"Pqd share", "|lambda2|", "E[CNOT/trans]", "CNOT(mean)",
             "CNOT(std)", "fidelity"});
  for (double Share : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05}) {
    TransitionMatrix P =
        Share >= 1.0 ? buildQDrift(H) : combineWithQDrift(H, Pgc, Share);
    double Lambda2 = P.secondEigenvalueMagnitude();
    double Expected = expectedTransitionCNOTs(H, P, Pi);
    // An 8-shot batch per dial setting: the CNOT std makes the slower
    // mixing at low Pqd share visible alongside the gate savings.
    BatchRequest Req;
    Req.Strategy = std::make_shared<const SamplingStrategy>(
        std::make_shared<const HTTGraph>(H, std::move(P)), T, Eps);
    Req.NumShots = 8;
    Req.Seed = 11;
    Req.KeepResults = true; // fidelity needs a schedule
    BatchResult Batch = Engine.compileBatch(Req);
    Out.addRow({formatDouble(Share), formatDouble(Lambda2, 3),
                formatDouble(Expected, 4), formatDouble(Batch.CNOTs.Mean),
                formatDouble(Batch.CNOTs.Std),
                formatDouble(
                    Eval.fidelity(Batch.Results.front().Schedule), 5)});
  }
  Out.print(std::cout);
  std::cout << "\nReading the dial: lambda2 rises as the Pqd share falls "
               "(slower mixing,\nlarger sampling variance) while the gate "
               "cost drops — the reconciliation\nthe paper's Section 5 is "
               "about.\n";
  return 0;
}
