//===- tools/marqsim-cli.cpp - The MarQSim compiler driver --------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line compiler: Hamiltonian text file in, OpenQASM 2.0 out.
//
//   marqsim-cli <hamiltonian.txt> [options]
//     --time=T            evolution time (default 1.0)
//     --epsilon=E         target precision (default 0.05)
//     --config=NAME       baseline | gc | gc-rp   (default gc)
//     --qd=W --gc=W --rp=W  custom configuration weights (override config)
//     --rounds=K          Prp perturbation rounds (default 8)
//     --seed=S            sampling seed (default 1)
//     --shots=N           independent compilation shots (default 1); the
//                         QASM output is always shot 0
//     --jobs=J            worker threads for the batch (default 1, 0 = all
//                         cores); results are bit-identical for every J
//     --out=FILE          write QASM here (default stdout)
//     --stats             print gate statistics to stderr (with --shots>1,
//                         the per-batch aggregate table)
//     --dot=FILE          also dump the HTT graph as Graphviz DOT
//
// Exit codes: 0 success, 1 usage error, 2 malformed input.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"
#include "circuit/QasmExport.h"
#include "pauli/HamiltonianIO.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <fstream>
#include <iostream>
#include <memory>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.positionals().size() != 1 || CL.getBool("help")) {
    std::cerr << "usage: marqsim-cli <hamiltonian.txt> [--time=T] "
                 "[--epsilon=E]\n"
                 "  [--config=baseline|gc|gc-rp] [--qd=W --gc=W --rp=W]\n"
                 "  [--rounds=K] [--seed=S] [--shots=N] [--jobs=J]\n"
                 "  [--out=FILE] [--stats] [--dot=FILE]\n";
    return 1;
  }

  std::string Error;
  auto Parsed = readHamiltonianFile(CL.positionals()[0], &Error);
  if (!Parsed) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  Hamiltonian H = Parsed->merged().splitLargeTerms();

  double WQd = 0.4, WGc = 0.6, WRp = 0.0;
  std::string Config = CL.getString("config", "gc");
  if (Config == "baseline") {
    WQd = 1.0;
    WGc = WRp = 0.0;
  } else if (Config == "gc-rp") {
    WQd = 0.4;
    WGc = WRp = 0.3;
  } else if (Config != "gc") {
    std::cerr << "error: unknown config '" << Config << "'\n";
    return 1;
  }
  if (CL.has("qd") || CL.has("gc") || CL.has("rp")) {
    WQd = CL.getDouble("qd", 0.0);
    WGc = CL.getDouble("gc", 0.0);
    WRp = CL.getDouble("rp", 0.0);
    double Sum = WQd + WGc + WRp;
    if (Sum <= 0.0) {
      std::cerr << "error: configuration weights must be positive\n";
      return 1;
    }
    WQd /= Sum;
    WGc /= Sum;
    WRp /= Sum;
  }

  double Time = CL.getDouble("time", 1.0);
  double Epsilon = CL.getDouble("epsilon", 0.05);
  unsigned Rounds = static_cast<unsigned>(CL.getInt("rounds", 8));
  uint64_t Seed = static_cast<uint64_t>(CL.getInt("seed", 1));
  int64_t ShotsArg = CL.getInt("shots", 1);
  if (ShotsArg < 1) {
    std::cerr << "error: --shots must be at least 1\n";
    return 1;
  }
  size_t Shots = static_cast<size_t>(ShotsArg);
  int64_t JobsArg = CL.getInt("jobs", 1);
  if (JobsArg < 0) {
    std::cerr << "error: --jobs must be non-negative (0 = all cores)\n";
    return 1;
  }
  unsigned Jobs = static_cast<unsigned>(JobsArg);

  // Setup once: matrix, graph validation, and sampling tables are shared
  // by every shot. Single-term Hamiltonians skip the flow machinery.
  TransitionMatrix P =
      H.numTerms() < 2
          ? buildQDrift(H)
          : makeConfigMatrix(H, WQd, WGc, WRp, Rounds, Seed ^ 0xD1CE);
  auto Graph = std::make_shared<const HTTGraph>(H, std::move(P));
  if (!Graph->isValidForCompilation()) {
    std::cerr << "error: transition matrix failed Theorem 4.1 validation\n";
    return 2;
  }
  auto Strategy =
      std::make_shared<const SamplingStrategy>(Graph, Time, Epsilon);

  CompilerEngine Engine;
  // Shot 0 carries the QASM output; with --shots=1 this is the whole run.
  // With --shots>1 it is lifted out of the batch via PerShot so the shot
  // is compiled exactly once.
  CompilationResult R;
  BatchResult Batch;
  if (Shots == 1) {
    R = Engine.compileOne(*Strategy, Seed);
  } else {
    BatchRequest Req;
    Req.Strategy = Strategy;
    Req.NumShots = Shots;
    Req.Jobs = Jobs;
    Req.Seed = Seed;
    Req.PerShot = [&](size_t Shot, const CompilationResult &Res) {
      if (Shot == 0)
        R = Res; // single writer: only the worker that compiled shot 0
    };
    Batch = Engine.compileBatch(Req);
  }

  if (CL.has("dot")) {
    std::ofstream Dot(CL.getString("dot"));
    Dot << Graph->toDot();
  }
  if (CL.has("out")) {
    std::ofstream Out(CL.getString("out"));
    exportQasm(R.Circ, Out);
  } else {
    exportQasm(R.Circ, std::cout);
  }

  if (Shots > 1) {
    Table Agg({"metric", "mean", "std", "min", "max"});
    auto AddRow = [&](const char *Name, const SummaryStat &S) {
      Agg.addRow({Name, formatDouble(S.Mean), formatDouble(S.Std),
                  formatDouble(S.Min), formatDouble(S.Max)});
    };
    AddRow("samples N", Batch.Samples);
    AddRow("CNOTs", Batch.CNOTs);
    AddRow("1q gates", Batch.Singles);
    AddRow("total gates", Batch.Totals);
    std::cerr << "batch: " << Shots << " shots, jobs=" << Batch.JobsUsed
              << ", " << formatDouble(Batch.Seconds) << " s, hash="
              << Batch.batchHash() << "\n";
    Agg.print(std::cerr);
  }

  if (CL.getBool("stats")) {
    std::cerr << "terms=" << H.numTerms() << " lambda="
              << formatDouble(H.lambda()) << " N=" << R.NumSamples
              << " cnots=" << R.Counts.CNOTs
              << " singles=" << R.Counts.SingleQubit
              << " total=" << R.Counts.total()
              << " depth=" << R.Circ.depth() << "\n";
  }
  return 0;
}
