//===- tools/marqsim-cli.cpp - The MarQSim compiler driver --------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line compiler: Hamiltonian text file (or registry model) in,
// OpenQASM 2.0 out. The CLI is a thin declarative shell: flags populate a
// TaskSpec and a SimulationService runs it, so repeated invocations with a
// persistent --cache-dir reuse min-cost-flow solutions by content hash.
//
//   marqsim-cli <hamiltonian.txt> [options]
//   marqsim-cli --model=Na+ [options]
//     --time=T            evolution time (default 1.0)
//     --epsilon=E         target precision (default 0.05)
//     --config=NAME       baseline | gc | gc-rp   (default gc)
//     --qd=W --gc=W --rp=W  custom configuration weights (override config)
//     --rounds=K          Prp perturbation rounds (default 8)
//     --perturb-seed=S    Prp cost-perturbation seed (default fixed)
//     --seed=S            sampling seed (default 1)
//     --shots=N           independent compilation shots (default 1); the
//                         QASM output is always shot 0
//     --jobs=J            worker threads for the batch (default 1, 0 = all
//                         cores); results are bit-identical for every J
//     --columns=K         fidelity-estimation columns (default 0 = off);
//                         evaluated per shot on the batch workers
//     --cache-dir=DIR     persistent matrix cache (default from
//                         $MARQSIM_CACHE_DIR; empty = in-memory only)
//     --out=FILE          write QASM here (default stdout)
//     --stats             print gate + cache statistics to stderr (with
//                         --shots>1, the per-batch aggregate table)
//     --dot=FILE          also dump the HTT graph as Graphviz DOT
//
// Exit codes: 0 success, 1 usage error, 2 malformed input.
//
//===----------------------------------------------------------------------===//

#include "circuit/QasmExport.h"
#include "service/SimulationService.h"
#include "support/Table.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace marqsim;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if ((CL.positionals().empty() && !CL.has("model")) || CL.getBool("help")) {
    std::cerr << "usage: marqsim-cli <hamiltonian.txt> | --model=NAME\n"
                 "  [--time=T] [--epsilon=E]\n"
                 "  [--config=baseline|gc|gc-rp] [--qd=W --gc=W --rp=W]\n"
                 "  [--rounds=K] [--perturb-seed=S] [--seed=S] [--shots=N]\n"
                 "  [--jobs=J] [--columns=K] [--cache-dir=DIR]\n"
                 "  [--out=FILE] [--stats] [--dot=FILE]\n";
    return 1;
  }

  std::string Error;
  std::optional<TaskSpec> Spec = TaskSpec::fromCommandLine(CL, &Error);
  if (!Spec) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  Spec->Evaluate.ExportShotZero = true; // shot 0 carries the QASM output
  Spec->Evaluate.DumpDot = CL.has("dot");

  ServiceOptions Options;
  if (const char *Env = std::getenv("MARQSIM_CACHE_DIR"))
    Options.CacheDir = Env;
  Options.CacheDir = CL.getString("cache-dir", Options.CacheDir);

  SimulationService Service(Options);
  std::optional<TaskResult> Result = Service.run(*Spec, &Error);
  if (!Result) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }

  if (CL.has("dot")) {
    std::ofstream Dot(CL.getString("dot"));
    Dot << Result->GraphDot;
  }
  if (CL.has("out")) {
    std::ofstream Out(CL.getString("out"));
    exportQasm(Result->ShotZero.Circ, Out);
  } else {
    exportQasm(Result->ShotZero.Circ, std::cout);
  }

  const BatchResult &Batch = Result->Batch;
  if (Spec->Shots > 1) {
    Table Agg({"metric", "mean", "std", "min", "max"});
    auto AddRow = [&](const char *Name, const SummaryStat &S) {
      Agg.addRow({Name, formatDouble(S.Mean), formatDouble(S.Std),
                  formatDouble(S.Min), formatDouble(S.Max)});
    };
    AddRow("samples N", Batch.Samples);
    AddRow("CNOTs", Batch.CNOTs);
    AddRow("1q gates", Batch.Singles);
    AddRow("total gates", Batch.Totals);
    if (Result->HasFidelity)
      AddRow("fidelity", Result->Fidelity);
    std::cerr << "batch: " << Spec->Shots << " shots, jobs="
              << Batch.JobsUsed << ", " << formatDouble(Batch.Seconds)
              << " s, hash=" << Batch.batchHash() << "\n";
    Agg.print(std::cerr);
  }

  if (CL.getBool("stats")) {
    const CompilationResult &R = Result->ShotZero;
    std::cerr << "fingerprint=" << std::hex << Result->Fingerprint
              << std::dec << " N=" << R.NumSamples
              << " cnots=" << R.Counts.CNOTs
              << " singles=" << R.Counts.SingleQubit
              << " total=" << R.Counts.total()
              << " depth=" << R.Circ.depth() << "\n";
    if (Result->HasFidelity && Spec->Shots == 1)
      std::cerr << "fidelity=" << formatDouble(Result->ShotFidelities[0], 6)
                << " (" << Spec->Evaluate.FidelityColumns << " columns)\n";
    const CacheStats &S = Result->Stats;
    std::cerr << "matrix-cache hits=" << S.matrixHits()
              << " misses=" << S.matrixMisses() << " disk=" << S.DiskLoads
              << "\ngraph-cache hits=" << S.GraphHits
              << " misses=" << S.GraphMisses << " evaluator-cache hits="
              << S.EvaluatorHits << " misses=" << S.EvaluatorMisses << "\n";
  }
  return 0;
}
