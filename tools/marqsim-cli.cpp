//===- tools/marqsim-cli.cpp - The MarQSim compiler driver --------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line compiler: Hamiltonian text file (or registry model) in,
// OpenQASM 2.0 out. The CLI is a thin declarative shell: flags populate a
// TaskSpec and a SimulationService runs it, so repeated invocations with a
// persistent --cache-dir reuse min-cost-flow solutions by content hash.
//
//   marqsim-cli <hamiltonian.txt> [options]
//   marqsim-cli --model=Na+ [options]
//     --time=T            evolution time (default 1.0)
//     --epsilon=E         target precision (default 0.05)
//     --config=NAME       baseline | gc | gc-rp   (default gc)
//     --qd=W --gc=W --rp=W  custom configuration weights (override config)
//     --rounds=K          Prp perturbation rounds (default 8)
//     --perturb-seed=S    Prp cost-perturbation seed (default fixed)
//     --seed=S            sampling seed (default 1)
//     --shots=N           independent compilation shots (default 1); the
//                         QASM output is always shot 0
//     --jobs=J            worker threads for the batch (default 1, 0 = all
//                         cores); results are bit-identical for every J
//     --eval-jobs=J       worker threads *within* each shot's fidelity
//                         evaluation (default 1, 0 = all cores): the
//                         evaluator fans its fixed-width column blocks
//                         across J threads; results are bit-identical for
//                         every J. Complements --jobs when shots are few
//                         and columns are many
//     --shards=K          split the batch over K re-exec'd worker
//                         processes and merge their manifests; the merged
//                         output is bit-identical to --shards=1 (give a
//                         shared --cache-dir so the sweep performs one
//                         MCFP solve total)
//     --shard-dir=DIR     manifest/log directory for --shards (default: a
//                         per-invocation directory under the system temp
//                         dir; valid manifests found there are reused)
//     --workers=H:P,...   cross-host fleet mode: dispatch the shard shot
//                         ranges to resident marqsim-daemon workers over
//                         the JSON protocol instead of re-exec'd local
//                         processes (--shards defaults to the worker
//                         count). The coordinator performs the single
//                         MCFP solve and pushes the deterministic
//                         artifacts to every worker as content-addressed
//                         artifact-put frames, so no shared --cache-dir
//                         or filesystem is needed; the merged output is
//                         bit-identical to a single-process run, and a
//                         worker that dies or times out mid-range is
//                         dropped with its range re-dispatched to the
//                         survivors
//     --fleet-timeout-ms=T  per-range worker timeout in fleet mode; a
//                         worker exceeding it is treated as dead
//                         (default 0 = wait forever)
//     --columns=K         fidelity-estimation columns (default 0 = off);
//                         evaluated per shot on the batch workers
//     --precision=P       fidelity panel tier: fp64 (default, bit-exact)
//                         or fp32 (opt-in throughput tier, tolerance-
//                         defined; rejected by --shards, which demands
//                         bit-exact manifests)
//     --noise=MODEL       noise channel applied during fidelity
//                         evaluation: none (default) | depolarizing |
//                         phase-flip | amplitude-damping. Requires
//                         --columns=N; the compiled QASM is unaffected
//     --noise-prob=P      per-gate error probability in [0, 1]
//                         (default 0; 0 disables the channel)
//     --noise-2q-factor=F error-probability multiplier for rotations
//                         touching >= 2 qubits (default 1)
//     --noise-mode=M      stochastic (default): deterministic Pauli-twirl
//                         injection on a dedicated per-shot RNG
//                         substream, bit-identical for every --jobs/
//                         --eval-jobs/--shards split; or density: the
//                         exact density-matrix oracle of the twirled
//                         channel (<= 6 qubits, fp64 only)
//     --cache-dir=DIR     persistent artifact store: MCFP components,
//                         alias bundles, fidelity columns (default from
//                         $MARQSIM_CACHE_DIR; empty = in-memory only);
//                         validated up front — an unwritable path is an
//                         error, not a silent uncached run
//     --cache-limit-mb=M  in-memory artifact cache budget in MiB
//                         (fractions allowed; default 0 = unbounded);
//                         artifacts evict least-recently-used, results
//                         are bit-identical for every budget
//     --out=FILE          write QASM here (default stdout)
//     --stats             print gate + cache statistics to stderr (with
//                         --shots>1, the per-batch aggregate table), the
//                         dispatched kernel tier and precision, plus the
//                         walk/emission vs evaluation phase timing
//     --stats-json        emit the same accounting as one machine-readable
//                         JSON object ("marqsim-stats-v1") on stdout —
//                         the exact serializer behind the daemon's stats
//                         frames, so the two surfaces cannot drift.
//                         Requires --out (stdout must carry only the JSON)
//     --connect=HOST:PORT run the task on a resident marqsim-daemon
//                         instead of in-process. The Hamiltonian is
//                         resolved locally and shipped inline; the result
//                         comes back as a bit-exact manifest, so QASM,
//                         fidelity hexes, and the batch hash are byte-
//                         identical to a local run of the same spec
//     --stream            with --connect: ask the daemon for streamed
//                         per-chunk shot frames (progress on stderr)
//     --server-stats      with --connect: print the daemon's cumulative
//                         stats frame as JSON on stdout and exit (no
//                         Hamiltonian needed). The cumulative cache
//                         section is where the one-solve contract shows:
//                         its gc_solves must not grow across repeated
//                         submits of one spec
//     --dot=FILE          also dump the HTT graph as Graphviz DOT
//
// Hidden worker mode (used by the --shards coordinator when it re-execs
// this binary; not part of the supported surface): --shard-index=I
// --shard-count=K --shard-out=FILE compiles shard I's shot range and
// writes its manifest instead of QASM, --mix-qd-bits/--mix-gc-bits/
// --mix-rp-bits/--time-bits/--epsilon-bits/--noise-prob-bits/
// --noise-2q-factor-bits override the corresponding spec fields with raw
// IEEE-754 bit patterns so the worker's spec is bit-identical to the
// coordinator's, and --cache-limit-bytes carries the coordinator's cache
// budget without a decimal round trip.
//
// Exit codes: 0 success, 1 usage error, 2 malformed input / failed run.
//
//===----------------------------------------------------------------------===//

#include "circuit/QasmExport.h"
#include "server/Client.h"
#include "shard/ShardCoordinator.h"
#include "support/Serial.h"
#include "support/Subprocess.h"
#include "support/Table.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

using namespace marqsim;

namespace {

/// Applies one hidden --NAME=HEX16 bit-pattern override.
bool applyBitsFlag(const CommandLine &CL, const char *Name, double &Out) {
  if (!CL.has(Name))
    return true;
  uint64_t Bits = 0;
  if (!serial::parseHex64(CL.getString(Name), Bits)) {
    std::cerr << "error: --" << Name << " expects 16 hex digits\n";
    return false;
  }
  Out = serial::bitsToDouble(Bits);
  return true;
}

void printBatchTable(const TaskSpec &Spec, const TaskResult &Result) {
  const BatchResult &Batch = Result.Batch;
  Table Agg({"metric", "mean", "std", "min", "max"});
  auto AddRow = [&](const char *Name, const SummaryStat &S) {
    Agg.addRow({Name, formatDouble(S.Mean), formatDouble(S.Std),
                formatDouble(S.Min), formatDouble(S.Max)});
  };
  AddRow("samples N", Batch.Samples);
  AddRow("CNOTs", Batch.CNOTs);
  AddRow("1q gates", Batch.Singles);
  AddRow("total gates", Batch.Totals);
  if (Result.HasFidelity)
    AddRow("fidelity", Result.Fidelity);
  std::cerr << "batch: " << Spec.Shots << " shots, jobs=" << Batch.JobsUsed
            << ", " << formatDouble(Batch.Seconds)
            << " s, hash=" << Batch.batchHash() << "\n";
  Agg.print(std::cerr);
}

void printCacheStats(const CacheStats &S) {
  std::cerr << "matrix-cache hits=" << S.matrixHits()
            << " misses=" << S.matrixMisses() << " disk=" << S.DiskLoads
            << "\ngraph-cache hits=" << S.GraphHits
            << " misses=" << S.GraphMisses << " evaluator-cache hits="
            << S.EvaluatorHits << " misses=" << S.EvaluatorMisses
            << " super-cache hits=" << S.SuperHits
            << " misses=" << S.SuperMisses << "\n";
}

void printStoreStats(const ArtifactStore::Stats &S, size_t LimitBytes) {
  std::cerr << "store: mem-hits=" << S.MemoryHits
            << " disk-hits=" << S.DiskHits << " computes=" << S.Computes
            << " evictions=" << S.Evictions
            << " bytes=" << S.BytesInUse << " peak=" << S.PeakBytes
            << " limit=" << LimitBytes << " disk-writes=" << S.DiskWrites
            << "\n";
}

/// The hidden re-exec entry point: compile one shard's shot range and
/// write its manifest.
int runWorkerMode(const CommandLine &CL, const TaskSpec &Spec,
                  const ServiceOptions &Options) {
  int64_t Index = CL.getInt("shard-index", -1);
  int64_t Count = CL.getInt("shard-count", 0);
  std::string OutPath = CL.getString("shard-out");
  if (Index < 0 || Count < 1 || Index >= Count || OutPath.empty()) {
    std::cerr << "error: worker mode needs --shard-index in [0, "
                 "--shard-count) and --shard-out=FILE\n";
    return 1;
  }
  SimulationService Service(Options);
  std::string Error;
  std::optional<ShardManifest> Manifest = ShardCoordinator::runShard(
      Service, Spec, static_cast<unsigned>(Index),
      static_cast<unsigned>(Count), &Error);
  if (!Manifest || !Manifest->writeFile(OutPath, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  return 0;
}

/// --connect mode: ship the spec to a resident daemon and rebuild the
/// result locally from the returned manifest. Output is byte-identical
/// to a local run of the same spec.
int runConnectMode(const CommandLine &CL, TaskSpec Spec) {
  std::string Error;
  // DumpDot is excluded from contentKey, so asking the daemon for the
  // graph does not perturb caching.
  Spec.Evaluate.DumpDot = CL.has("dot");
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(CL.getString("connect"), &Error);
  if (!Client) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  const bool Stream = CL.getBool("stream");
  server::ShotProgress Progress;
  if (Stream)
    Progress = [](const ShotRange &R, size_t Total) {
      std::cerr << "shots [" << R.Begin << ", " << R.end() << ") of "
                << Total << " done\n";
    };
  std::optional<server::RemoteRunResult> Out =
      Client->runTask(Spec, &Error, Stream, /*DeadlineMs=*/0, Progress);
  if (!Out) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }

  if (CL.has("dot")) {
    std::ofstream Dot(CL.getString("dot"));
    Dot << Out->Dot;
  }
  if (CL.has("out")) {
    std::ofstream File(CL.getString("out"));
    File << Out->Qasm;
  } else {
    std::cout << Out->Qasm;
  }

  if (Spec.Shots > 1)
    printBatchTable(Spec, Out->Result);

  if (CL.getBool("stats")) {
    const TaskResult &R = Out->Result;
    // Shot 0 travels as rendered text plus its batch summary, not a
    // CompilationResult; the summary carries the same gate counts.
    const ShotSummary &S0 = R.Batch.Shots.front();
    std::cerr << "fingerprint=" << std::hex << R.Fingerprint << std::dec
              << " N=" << S0.NumSamples << " cnots=" << S0.Counts.CNOTs
              << " singles=" << S0.Counts.SingleQubit
              << " total=" << S0.Counts.total() << " depth=" << Out->Depth
              << "\n";
    std::cerr << "remote: daemon=" << CL.getString("connect")
              << " request-id=" << Out->RequestId << "\n";
    if (Spec.Noise.enabled())
      std::cerr << "noise: " << noiseChannelName(Spec.Noise.Kind)
                << " mode=" << noiseModeName(Spec.Noise.Mode)
                << " prob=" << formatDouble(Spec.Noise.Prob, 6)
                << " 2q-factor=" << formatDouble(Spec.Noise.TwoQubitFactor, 6)
                << "\n";
    if (R.HasFidelity && Spec.Shots == 1)
      std::cerr << "fidelity=" << formatDouble(R.ShotFidelities[0], 6)
                << " (" << Spec.Evaluate.FidelityColumns << " columns)\n";
    // R.Stats arrived inside the manifest: the daemon's per-run cache
    // accounting, which is what a warm-path check wants to see.
    printCacheStats(R.Stats);
  }
  if (CL.getBool("stats-json"))
    std::cout << Out->Stats.dump() << "\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  // A pure stats query needs no Hamiltonian; handle it before the usage
  // gate below would demand one.
  if (CL.has("connect") && CL.getBool("server-stats")) {
    std::string Error;
    std::optional<server::DaemonClient> Client =
        server::DaemonClient::connectTo(CL.getString("connect"), &Error);
    std::optional<json::Value> Stats;
    if (Client)
      Stats = Client->serverStats(&Error);
    if (!Stats) {
      std::cerr << "error: " << Error << "\n";
      return 2;
    }
    std::cout << Stats->dump() << "\n";
    return 0;
  }
  if ((CL.positionals().empty() && !CL.has("model")) || CL.getBool("help")) {
    std::cerr << "usage: marqsim-cli <hamiltonian.txt> | --model=NAME\n"
                 "  [--time=T] [--epsilon=E]\n"
                 "  [--config=baseline|gc|gc-rp] [--qd=W --gc=W --rp=W]\n"
                 "  [--rounds=K] [--perturb-seed=S] [--seed=S] [--shots=N]\n"
                 "  [--jobs=J] [--eval-jobs=J] [--shards=K] [--shard-dir=DIR]\n"
                 "  [--workers=HOST:PORT,...] [--fleet-timeout-ms=T]\n"
                 "  [--columns=K] [--precision=fp64|fp32]\n"
                 "  [--noise=MODEL] [--noise-prob=P] [--noise-2q-factor=F]\n"
                 "  [--noise-mode=stochastic|density]\n"
                 "  [--cache-dir=DIR] [--cache-limit-mb=M] [--out=FILE]\n"
                 "  [--stats] [--stats-json] [--dot=FILE]\n"
                 "  [--connect=HOST:PORT] [--stream] [--server-stats]\n";
    return 1;
  }

  std::string Error;
  std::optional<TaskSpec> Spec = TaskSpec::fromCommandLine(CL, &Error);
  if (!Spec) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  // Hidden bit-exact overrides (see the worker-mode note above).
  if (!applyBitsFlag(CL, "mix-qd-bits", Spec->Mix.WQd) ||
      !applyBitsFlag(CL, "mix-gc-bits", Spec->Mix.WGc) ||
      !applyBitsFlag(CL, "mix-rp-bits", Spec->Mix.WRp) ||
      !applyBitsFlag(CL, "time-bits", Spec->Time) ||
      !applyBitsFlag(CL, "epsilon-bits", Spec->Epsilon) ||
      !applyBitsFlag(CL, "noise-prob-bits", Spec->Noise.Prob) ||
      !applyBitsFlag(CL, "noise-2q-factor-bits", Spec->Noise.TwoQubitFactor))
    return 1;
  // Remaining worker-transport flags for spec fields fromCommandLine does
  // not expose (they complete TaskSpec::contentKey coverage).
  Spec->Flow.ProbScale = CL.getInt("prob-scale", Spec->Flow.ProbScale);
  Spec->Flow.CostScale = CL.getInt("cost-scale", Spec->Flow.CostScale);
  Spec->Evaluate.ColumnSeed = static_cast<uint64_t>(
      CL.getInt("column-seed", static_cast<int64_t>(Spec->Evaluate.ColumnSeed)));

  ServiceOptions Options;
  if (const char *Env = std::getenv("MARQSIM_CACHE_DIR"))
    Options.CacheDir = Env;
  Options.CacheDir = CL.getString("cache-dir", Options.CacheDir);
  // An unusable cache directory is a hard error: every downstream layer
  // treats the store as best-effort, so without this check a typo'd path
  // would silently re-solve everything on every invocation.
  if (!ArtifactStore::validateCacheDir(Options.CacheDir, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  double LimitMB = CL.getDouble("cache-limit-mb", 0.0);
  if (LimitMB < 0.0) {
    std::cerr << "error: --cache-limit-mb must be non-negative\n";
    return 1;
  }
  if (LimitMB > 0.0) {
    // A positive budget must never truncate to 0 (0 means unbounded —
    // the opposite of the tightest cap a sub-byte fraction asks for),
    // and a huge one must not overflow the size_t cast.
    constexpr double MaxBytes = 9.0e18;
    Options.CacheLimitBytes = static_cast<size_t>(
        std::min(std::max(std::ceil(LimitMB * 1024.0 * 1024.0), 1.0),
                 MaxBytes));
  }
  // Hidden worker transport: the coordinator's budget, byte-exact.
  int64_t LimitBytes = CL.getInt("cache-limit-bytes", -1);
  if (LimitBytes >= 0)
    Options.CacheLimitBytes = static_cast<size_t>(LimitBytes);

  bool WorkerMode =
      CL.has("shard-index") || CL.has("shard-count") || CL.has("shard-out");
  bool CoordinatorMode = CL.has("shards") || CL.has("workers");
  if (WorkerMode && CoordinatorMode) {
    std::cerr << "error: --shards (coordinator) and --shard-index/--shard-"
                 "out (worker) are mutually exclusive\n";
    return 1;
  }
  if (CL.getBool("stats-json") && !CL.has("out")) {
    std::cerr << "error: --stats-json needs --out so stdout carries only "
                 "the JSON object\n";
    return 1;
  }
  if (CL.has("connect")) {
    if (WorkerMode || CoordinatorMode) {
      std::cerr << "error: --connect runs on the daemon; it is mutually "
                   "exclusive with --shards and worker mode\n";
      return 1;
    }
    return runConnectMode(CL, *Spec);
  }
  if (WorkerMode)
    return runWorkerMode(CL, *Spec, Options);

  SimulationService Service(Options);
  std::optional<TaskResult> Result;
  ShardReport Report;
  bool Sharded = false;

  if (CoordinatorMode) {
    // Fleet mode: a comma-separated worker list; one shard per worker by
    // default so every daemon gets a range.
    std::vector<std::string> Workers;
    if (CL.has("workers")) {
      std::string List = CL.getString("workers");
      for (size_t Pos = 0; Pos <= List.size();) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string HostPort = List.substr(Pos, Comma - Pos);
        if (!HostPort.empty())
          Workers.push_back(std::move(HostPort));
        Pos = Comma + 1;
      }
      if (Workers.empty()) {
        std::cerr << "error: --workers needs at least one host:port\n";
        return 1;
      }
    }
    int64_t Shards = CL.getInt(
        "shards", Workers.empty() ? 1 : static_cast<int64_t>(Workers.size()));
    if (Shards < 1) {
      std::cerr << "error: --shards must be at least 1\n";
      return 1;
    }
    int64_t FleetTimeout = CL.getInt("fleet-timeout-ms", 0);
    if (FleetTimeout < 0) {
      std::cerr << "error: --fleet-timeout-ms must be non-negative\n";
      return 1;
    }
    ShardOptions Shard;
    Shard.ShardCount = static_cast<unsigned>(Shards);
    Shard.Workers = std::move(Workers);
    Shard.FleetTimeoutMs = static_cast<unsigned>(FleetTimeout);
    Shard.WorkDir = CL.getString("shard-dir");
    bool AutoWorkDir = Shard.WorkDir.empty();
    if (AutoWorkDir)
      Shard.WorkDir = (std::filesystem::temp_directory_path() /
                       ("marqsim-shards-" + std::to_string(::getpid())))
                          .string();
    Shard.CacheDir = Options.CacheDir;
    Shard.CacheLimitBytes = Options.CacheLimitBytes;
    Shard.WorkerBinary = currentExecutablePath(Argv[0]);
    // Fleet mode shares this process's service: the prewarm there is the
    // fleet's one MCFP solve, and the shot-0 recompile below then hits
    // the same in-memory store instead of solving again.
    if (!Shard.Workers.empty())
      Shard.SharedService = &Service;
    ShardCoordinator Coordinator(Shard);
    Result = Coordinator.run(*Spec, &Error, &Report);
    Sharded = true;
    if (Result) {
      // Shot 0 (QASM) and the DOT dump cannot travel through manifests;
      // a one-shot ranged run against the shared cache recompiles exactly
      // that shot — deterministically the same circuit the batch saw.
      TaskSpec ShotZeroSpec = *Spec;
      ShotZeroSpec.Evaluate.ExportShotZero = true;
      ShotZeroSpec.Evaluate.DumpDot = CL.has("dot");
      ShotZeroSpec.Evaluate.FidelityColumns = 0;
      // Noise models execution, not compilation, and a columns-free spec
      // rejects it — strip it so the recompile stays a pure circuit run.
      ShotZeroSpec.Noise = NoiseSpec();
      std::optional<TaskResult> ShotZero =
          Service.run(ShotZeroSpec, ShotRange{0, 1}, &Error);
      if (!ShotZero) {
        Result.reset();
      } else {
        Result->ShotZero = std::move(ShotZero->ShotZero);
        Result->HasShotZero = true;
        Result->GraphDot = std::move(ShotZero->GraphDot);
      }
    }
    // The per-invocation default work directory has no resume value (its
    // pid-based name is never reused): drop it on success, keep it — and
    // any explicit --shard-dir — for diagnosis and resume otherwise.
    if (Result && AutoWorkDir) {
      std::error_code EC;
      std::filesystem::remove_all(Shard.WorkDir, EC);
    }
  } else {
    Spec->Evaluate.ExportShotZero = true; // shot 0 carries the QASM output
    Spec->Evaluate.DumpDot = CL.has("dot");
    Result = Service.run(*Spec, &Error);
  }
  if (!Result) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }

  if (CL.has("dot")) {
    std::ofstream Dot(CL.getString("dot"));
    Dot << Result->GraphDot;
  }
  if (CL.has("out")) {
    std::ofstream Out(CL.getString("out"));
    exportQasm(Result->ShotZero.Circ, Out);
  } else {
    exportQasm(Result->ShotZero.Circ, std::cout);
  }

  if (Spec->Shots > 1)
    printBatchTable(*Spec, *Result);

  if (CL.getBool("stats")) {
    const CompilationResult &R = Result->ShotZero;
    std::cerr << "fingerprint=" << std::hex << Result->Fingerprint
              << std::dec << " N=" << R.NumSamples
              << " cnots=" << R.Counts.CNOTs
              << " singles=" << R.Counts.SingleQubit
              << " total=" << R.Counts.total()
              << " depth=" << R.Circ.depth() << "\n";
    std::cerr << "kernels: " << SimulationService::kernelName()
              << " detected=" << SimulationService::detectedKernelName()
              << " avx512-os="
              << (SimulationService::avx512OsEnabled() ? "yes" : "no")
              << " precision=" << precisionName(Spec->Precision) << "\n";
    if (Spec->Noise.enabled())
      std::cerr << "noise: " << noiseChannelName(Spec->Noise.Kind)
                << " mode=" << noiseModeName(Spec->Noise.Mode)
                << " prob=" << formatDouble(Spec->Noise.Prob, 6)
                << " 2q-factor=" << formatDouble(Spec->Noise.TwoQubitFactor, 6)
                << "\n";
    if (Result->HasFidelity && Spec->Shots == 1)
      std::cerr << "fidelity=" << formatDouble(Result->ShotFidelities[0], 6)
                << " (" << Spec->Evaluate.FidelityColumns << " columns)\n";
    // Phase split of the batch: walk/emission (the sequential Markov part)
    // vs per-shot evaluation (the fidelity calls). Eval is CPU-seconds
    // summed per shot, so it can exceed the wall figure when shots run
    // concurrently. For sharded runs the wall figure is the coordinator's
    // whole run (spawn + workers + merge), not a batch clock, so the
    // walk-vs-eval subtraction would be meaningless — only the summed
    // worker eval time is reported there.
    if (!Sharded) {
      const double Eval = Result->Batch.EvalSeconds;
      const double Walk = std::max(0.0, Result->Batch.Seconds - Eval);
      std::cerr << "phase: wall=" << formatDouble(Result->Batch.Seconds)
                << " s walk+emit=" << formatDouble(Walk)
                << " s eval=" << formatDouble(Eval) << " s\n";
    } else {
      std::cerr << "phase: coordinator-wall="
                << formatDouble(Result->Batch.Seconds)
                << " s eval-cpu=" << formatDouble(Result->Batch.EvalSeconds)
                << " s (summed across workers)\n";
    }
    if (Sharded) {
      // Whole-run accounting: coordinator pre-warm + every worker + the
      // local shot-0 service. "gc-solves=1" is the one-solve contract.
      // In fleet mode the coordinator's prewarm ran *inside* this
      // process's service (SharedService), so Service.stats() already
      // includes LocalStats — adding both would double-count the solve.
      CacheStats Total = Report.WorkerStats;
      if (!Report.Fleet.Used)
        Total += Report.LocalStats;
      Total += Service.stats();
      if (Report.Fleet.Used) {
        size_t Dead = 0;
        for (const FleetWorkerStats &W : Report.Fleet.Workers) {
          if (!W.Alive)
            ++Dead;
          std::cerr << "fleet-worker: " << W.HostPort
                    << (W.Alive ? "" : " (dead)")
                    << " dispatched=" << W.RangesDispatched
                    << " redispatched=" << W.RangesRedispatched
                    << " fetch-hits=" << W.FetchHits
                    << " fetch-misses=" << W.FetchMisses
                    << " artifact-bytes=" << W.ArtifactBytesServed
                    << " eval=" << formatDouble(W.EvalSeconds) << " s\n";
        }
        std::cerr << "fleet: workers=" << Report.Fleet.Workers.size()
                  << " dead=" << Dead << "\n";
      }
      std::cerr << "shard: shards=" << Report.Plan.shardCount()
                << " retries=" << Report.Retries
                << " reused=" << Report.Reused
                << " gc-solves=" << Total.GCSolveMisses
                << " rp-solves=" << Total.RPSolveMisses
                << " disk-loads=" << Total.DiskLoads << "\n";
      for (const std::string &Note : Report.Notes)
        std::cerr << "shard-note: " << Note << "\n";
      printCacheStats(Total);
      // No store: line here — each worker process has its own store, so
      // this process's tier counters would misleadingly sit next to the
      // whole-run shard accounting above.
    } else {
      printCacheStats(Result->Stats);
      printStoreStats(Service.storeStats(), Options.CacheLimitBytes);
    }
  }

  if (CL.getBool("stats-json")) {
    // The same serializer that backs the daemon's stats frames; for
    // sharded runs the per-process store tiers are omitted (each worker
    // had its own store, so this process's counters would mislead).
    ArtifactStore::Stats Store = Service.storeStats();
    json::Value StatsJson = server::runStatsJson(
        *Spec, *Result, Sharded ? nullptr : &Store, Options.CacheLimitBytes);
    // Additive key: present only when fleet mode actually dispatched, so
    // existing marqsim-stats-v1 consumers parse unchanged.
    if (Report.Fleet.Used)
      StatsJson.set("fleet", server::fleetStatsJson(Report.Fleet));
    std::cout << StatsJson.dump() << "\n";
  }
  return 0;
}
