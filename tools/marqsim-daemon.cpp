//===- tools/marqsim-daemon.cpp - The resident simulation daemon --------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Long-running simulation service over one SimulationService: the tiered
// artifact store and the shared thread pool stay resident across requests,
// so repeated TaskSpecs for one Hamiltonian pay a single MCFP solve
// instead of a process re-exec each. Clients speak the line-delimited JSON
// protocol (src/server/Protocol.h); `marqsim-cli --connect host:port` is
// the reference client and reproduces local output byte for byte.
//
// The same binary is the worker of the cross-host execution fabric: a
// fleet coordinator (`marqsim-cli --workers=host:port,...`) warms this
// daemon through content-addressed artifact-put frames — so it never
// performs its own MCFP solve — and dispatches shot ranges as
// shard-submit frames. No extra flags are needed for the worker role; the
// stats frame's "fabric" section accounts for the fleet traffic served.
//
//   marqsim-daemon [options]
//     --host=H              bind address (default 127.0.0.1)
//     --port=P              bind port (default 0 = ephemeral; the bound
//                           port is printed on stdout either way)
//     --port-file=FILE      also write the bound port to FILE (written
//                           atomically; lets scripts poll for readiness)
//     --workers=N           concurrently executing requests (default 1,
//                           0 = all cores); shot-level parallelism within
//                           a request is the client's --jobs
//     --max-queue=N         queued-request cap (default 64); beyond it
//                           submits are rejected with "queue-full"
//     --stream-chunk=N      shots per streamed chunk (default 1)
//     --idle-timeout-ms=T   close connections idle for T ms (default 0 =
//                           never)
//     --max-connections=N   concurrent connection cap (default 64)
//     --cache-dir=DIR       persistent artifact store (default from
//                           $MARQSIM_CACHE_DIR; empty = in-memory only)
//     --cache-limit-mb=M    in-memory artifact cache budget in MiB
//                           (default 0 = unbounded)
//
// Graceful drain: SIGTERM or SIGINT (or a client "shutdown" frame) stops
// accepting connections, finishes every admitted request, answers the
// clients still waiting, and exits 0.
//
// Exit codes: 0 clean drain, 1 usage error, 2 bind/start failure.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"
#include "support/CommandLine.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace marqsim;

namespace {

server::Daemon *ActiveDaemon = nullptr;

/// Signal handlers may only touch async-signal-safe state;
/// Daemon::notifyShutdown is exactly one write(2) on a pipe.
void onSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->notifyShutdown();
}

bool getCount(const CommandLine &CL, const char *Name, int64_t Default,
              int64_t Min, int64_t &Out) {
  Out = CL.getInt(Name, Default);
  if (Out < Min) {
    std::cerr << "error: --" << Name << " must be at least " << Min << "\n";
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.getBool("help")) {
    std::cerr << "usage: marqsim-daemon [--host=H] [--port=P] "
                 "[--port-file=FILE]\n"
                 "  [--workers=N] [--max-queue=N] [--stream-chunk=N]\n"
                 "  [--idle-timeout-ms=T] [--max-connections=N]\n"
                 "  [--cache-dir=DIR] [--cache-limit-mb=M]\n";
    return 1;
  }

  server::DaemonOptions Opts;
  Opts.Host = CL.getString("host", Opts.Host);
  int64_t Port, Workers, MaxQueue, Chunk, IdleMs, MaxConns;
  if (!getCount(CL, "port", 0, 0, Port) ||
      !getCount(CL, "workers", 1, 0, Workers) ||
      !getCount(CL, "max-queue", 64, 1, MaxQueue) ||
      !getCount(CL, "stream-chunk", 1, 1, Chunk) ||
      !getCount(CL, "idle-timeout-ms", 0, 0, IdleMs) ||
      !getCount(CL, "max-connections", 64, 1, MaxConns))
    return 1;
  if (Port > 65535) {
    std::cerr << "error: --port out of range\n";
    return 1;
  }
  Opts.Port = static_cast<uint16_t>(Port);
  Opts.Scheduler.Workers = static_cast<unsigned>(Workers);
  Opts.Scheduler.MaxQueueDepth = static_cast<size_t>(MaxQueue);
  Opts.Scheduler.StreamChunkShots = static_cast<size_t>(Chunk);
  Opts.IdleTimeoutMs = static_cast<unsigned>(IdleMs);
  Opts.MaxConnections = static_cast<size_t>(MaxConns);

  ServiceOptions Service;
  if (const char *Env = std::getenv("MARQSIM_CACHE_DIR"))
    Service.CacheDir = Env;
  Service.CacheDir = CL.getString("cache-dir", Service.CacheDir);
  std::string Error;
  if (!ArtifactStore::validateCacheDir(Service.CacheDir, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  double LimitMB = CL.getDouble("cache-limit-mb", 0.0);
  if (LimitMB < 0.0) {
    std::cerr << "error: --cache-limit-mb must be non-negative\n";
    return 1;
  }
  if (LimitMB > 0.0)
    Service.CacheLimitBytes =
        static_cast<size_t>(LimitMB * 1024.0 * 1024.0) + 1;
  Opts.StoreLimitBytes = Service.CacheLimitBytes;

  SimulationService Sim(Service);
  server::Daemon Daemon(Sim, Opts);
  if (!Daemon.start(&Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }

  ActiveDaemon = &Daemon;
  struct sigaction SA{};
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  // A client vanishing mid-write must surface as a send error, never kill
  // the process (sendAll also passes MSG_NOSIGNAL; this covers any other
  // writer).
  signal(SIGPIPE, SIG_IGN);

  // Readiness line, flushed before serving: scripts parse the port from
  // here or from --port-file.
  std::printf("marqsim-daemon listening on %s:%u\n", Opts.Host.c_str(),
              static_cast<unsigned>(Daemon.port()));
  std::fflush(stdout);
  if (CL.has("port-file")) {
    const std::string Path = CL.getString("port-file");
    const std::string Tmp = Path + ".tmp";
    if (FILE *F = std::fopen(Tmp.c_str(), "w")) {
      std::fprintf(F, "%u\n", static_cast<unsigned>(Daemon.port()));
      std::fclose(F);
      std::rename(Tmp.c_str(), Path.c_str());
    }
  }

  int Exit = Daemon.serve();
  ActiveDaemon = nullptr;
  return Exit;
}
