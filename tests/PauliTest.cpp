//===- tests/PauliTest.cpp - Pauli algebra tests -------------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pauli/Hamiltonian.h"
#include "pauli/CommutingGroups.h"
#include "pauli/HamiltonianIO.h"
#include "pauli/PauliString.h"
#include "pauli/PauliSum.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace marqsim;

namespace {

Matrix denseOp(PauliOpKind K) {
  const Complex I(0, 1);
  switch (K) {
  case PauliOpKind::I:
    return Matrix::identity(2);
  case PauliOpKind::X:
    return Matrix::fromRows({{0.0, 1.0}, {1.0, 0.0}});
  case PauliOpKind::Y:
    return Matrix::fromRows({{0.0, -I}, {I, 0.0}});
  case PauliOpKind::Z:
    return Matrix::fromRows({{1.0, 0.0}, {0.0, -1.0}});
  }
  return Matrix();
}

/// Dense matrix of a string built purely by Kronecker products
/// (independent of PauliString::toMatrix).
Matrix denseString(const PauliString &P, unsigned N) {
  Matrix M = Matrix::identity(1);
  for (unsigned Q = N; Q-- > 0;)
    M = Matrix::kron(M, denseOp(P.op(Q)));
  return M;
}

PauliString randomString(unsigned N, RNG &Rng) {
  PauliString P;
  for (unsigned Q = 0; Q < N; ++Q)
    P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
  return P;
}

} // namespace

TEST(PauliStringTest, ParseAndPrintRoundTrip) {
  auto P = PauliString::parse("XYZI");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->str(4), "XYZI");
  EXPECT_EQ(P->op(0), PauliOpKind::I);
  EXPECT_EQ(P->op(1), PauliOpKind::Z);
  EXPECT_EQ(P->op(2), PauliOpKind::Y);
  EXPECT_EQ(P->op(3), PauliOpKind::X);
}

TEST(PauliStringTest, ParseRejectsGarbage) {
  EXPECT_FALSE(PauliString::parse("XQ").has_value());
  EXPECT_TRUE(PauliString::parse("").has_value()); // identity on 0 qubits
}

TEST(PauliStringTest, SetOpAndWeight) {
  PauliString P;
  EXPECT_TRUE(P.isIdentity());
  P.setOp(2, PauliOpKind::Y);
  P.setOp(5, PauliOpKind::Z);
  EXPECT_EQ(P.weight(), 2u);
  EXPECT_EQ(P.op(2), PauliOpKind::Y);
  P.setOp(2, PauliOpKind::I);
  EXPECT_EQ(P.weight(), 1u);
}

TEST(PauliStringTest, SingleQubitProductTable) {
  // Check sigma_a * sigma_b against dense matrices for all 16 pairs.
  static const Complex IPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  for (int A = 0; A < 4; ++A)
    for (int B = 0; B < 4; ++B) {
      PauliString PA, PB;
      PA.setOp(0, static_cast<PauliOpKind>(A));
      PB.setOp(0, static_cast<PauliOpKind>(B));
      int Pow = 0;
      PauliString PR = PA.multiply(PB, Pow);
      Matrix Lhs = denseString(PA, 1) * denseString(PB, 1);
      Matrix Rhs = denseString(PR, 1) * IPow[Pow];
      EXPECT_NEAR(Lhs.maxAbsDiff(Rhs), 0.0, 1e-14)
          << "A=" << A << " B=" << B;
    }
}

TEST(PauliStringTest, MultiQubitProductsMatchDense) {
  static const Complex IPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  RNG Rng(21);
  for (int Trial = 0; Trial < 50; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(4);
    PauliString A = randomString(N, Rng);
    PauliString B = randomString(N, Rng);
    int Pow = 0;
    PauliString R = A.multiply(B, Pow);
    Matrix Lhs = denseString(A, N) * denseString(B, N);
    Matrix Rhs = denseString(R, N) * IPow[Pow];
    ASSERT_NEAR(Lhs.maxAbsDiff(Rhs), 0.0, 1e-12);
  }
}

TEST(PauliStringTest, CommutationMatchesDense) {
  RNG Rng(22);
  for (int Trial = 0; Trial < 50; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(3);
    PauliString A = randomString(N, Rng);
    PauliString B = randomString(N, Rng);
    Matrix MA = denseString(A, N), MB = denseString(B, N);
    double CommNorm = (MA * MB - MB * MA).frobeniusNorm();
    EXPECT_EQ(A.commutesWith(B), CommNorm < 1e-12);
  }
}

TEST(PauliStringTest, ToMatrixMatchesKron) {
  RNG Rng(23);
  for (int Trial = 0; Trial < 30; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(4);
    PauliString P = randomString(N, Rng);
    EXPECT_NEAR(P.toMatrix(N).maxAbsDiff(denseString(P, N)), 0.0, 1e-14);
  }
}

TEST(PauliStringTest, MatchedOpsCountsEqualNonIdentity) {
  auto A = *PauliString::parse("ZZZZ");
  auto B = *PauliString::parse("XZXZ");
  // Matches at qubit 2 and qubit 0 (both Z).
  EXPECT_EQ(A.matchedOps(B), 2u);
  EXPECT_EQ(B.matchedOps(A), 2u);
  auto C = *PauliString::parse("IIII");
  EXPECT_EQ(A.matchedOps(C), 0u);
  EXPECT_EQ(A.matchedOps(A), 4u);
}

TEST(PauliStringTest, SixtyFourQubitBoundary) {
  // Bit 63 must work: masks, ops, weights, products, commutation.
  PauliString P;
  P.setOp(63, PauliOpKind::Y);
  P.setOp(0, PauliOpKind::Z);
  EXPECT_EQ(P.op(63), PauliOpKind::Y);
  EXPECT_EQ(P.weight(), 2u);
  EXPECT_EQ(P.xMask(), 1ULL << 63);
  EXPECT_EQ(P.zMask(), (1ULL << 63) | 1ULL);

  PauliString Q;
  Q.setOp(63, PauliOpKind::X);
  EXPECT_FALSE(P.commutesWith(Q)); // Y vs X on qubit 63
  int Pow = 0;
  PauliString R = P.multiply(Q, Pow);
  EXPECT_EQ(R.op(63), PauliOpKind::Z); // Y * X = -i Z
  EXPECT_EQ(Pow, 3);                   // phase -i = i^3

  std::string Text = P.str(64);
  EXPECT_EQ(Text.size(), 64u);
  EXPECT_EQ(Text.front(), 'Y');
  EXPECT_EQ(Text.back(), 'Z');
  auto Parsed = PauliString::parse(Text);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_TRUE(*Parsed == P);
}

TEST(PauliStringTest, MatchedOpsAtHighQubits) {
  PauliString A, B;
  A.setOp(63, PauliOpKind::Z);
  A.setOp(40, PauliOpKind::X);
  B.setOp(63, PauliOpKind::Z);
  B.setOp(40, PauliOpKind::Y);
  EXPECT_EQ(A.matchedOps(B), 1u);
}

TEST(PauliStringTest, OrderingIsStrictWeak) {
  auto A = *PauliString::parse("IX");
  auto B = *PauliString::parse("XI");
  EXPECT_TRUE(A < B || B < A);
  EXPECT_FALSE(A < A);
}

TEST(HamiltonianTest, ParseAndLambda) {
  Hamiltonian H = Hamiltonian::parse(
      {{1.0, "IIIZ"}, {0.5, "IIZZ"}, {0.4, "XXYY"}, {0.1, "ZXZY"}});
  EXPECT_EQ(H.numQubits(), 4u);
  EXPECT_EQ(H.numTerms(), 4u);
  EXPECT_DOUBLE_EQ(H.lambda(), 2.0);
  auto Pi = H.stationaryDistribution();
  EXPECT_DOUBLE_EQ(Pi[0], 0.5);
  EXPECT_DOUBLE_EQ(Pi[1], 0.25);
  EXPECT_DOUBLE_EQ(Pi[2], 0.2);
  EXPECT_DOUBLE_EQ(Pi[3], 0.05);
}

TEST(HamiltonianTest, ZeroCoefficientTermsDropped) {
  Hamiltonian H(2);
  H.addTerm(0.0, *PauliString::parse("XX"));
  EXPECT_TRUE(H.empty());
}

TEST(HamiltonianTest, MergedCombinesDuplicates) {
  Hamiltonian H(2);
  H.addTerm(0.5, *PauliString::parse("XX"));
  H.addTerm(0.25, *PauliString::parse("XX"));
  H.addTerm(-0.75, *PauliString::parse("ZZ"));
  H.addTerm(0.75, *PauliString::parse("ZZ"));
  Hamiltonian M = H.merged();
  EXPECT_EQ(M.numTerms(), 1u);
  EXPECT_DOUBLE_EQ(M.term(0).Coeff, 0.75);
}

TEST(HamiltonianTest, SplitLargeTermsEnforcesCap) {
  Hamiltonian H(2);
  H.addTerm(0.9, *PauliString::parse("XX"));
  H.addTerm(0.1, *PauliString::parse("ZZ"));
  Hamiltonian S = H.splitLargeTerms(0.5);
  EXPECT_DOUBLE_EQ(S.lambda(), H.lambda());
  auto Pi = S.stationaryDistribution();
  for (double P : Pi)
    EXPECT_LE(P, 0.5 + 1e-12);
  // Total weight on XX preserved.
  double XXWeight = 0.0;
  for (const auto &T : S.terms())
    if (T.String == *PauliString::parse("XX"))
      XXWeight += T.Coeff;
  EXPECT_DOUBLE_EQ(XXWeight, 0.9);
}

TEST(HamiltonianTest, RescaledToLambdaPreservesStationary) {
  Hamiltonian H = Hamiltonian::parse(
      {{1.0, "IIIZ"}, {0.5, "IIZZ"}, {0.4, "XXYY"}, {0.1, "ZXZY"}});
  Hamiltonian R = H.rescaledToLambda(10.0);
  EXPECT_NEAR(R.lambda(), 10.0, 1e-12);
  auto PiH = H.stationaryDistribution();
  auto PiR = R.stationaryDistribution();
  for (size_t I = 0; I < PiH.size(); ++I)
    EXPECT_NEAR(PiH[I], PiR[I], 1e-12);
  // Signs preserved.
  Hamiltonian Neg = Hamiltonian::parse({{-0.5, "XX"}, {0.5, "ZZ"}});
  Hamiltonian NegR = Neg.rescaledToLambda(2.0);
  EXPECT_DOUBLE_EQ(NegR.term(0).Coeff, -1.0);
}

TEST(HamiltonianTest, DenseMatrixMatchesTermSum) {
  Hamiltonian H = Hamiltonian::parse({{0.7, "XZ"}, {-0.3, "YY"}});
  Matrix Expect =
      denseString(*PauliString::parse("XZ"), 2) * Complex(0.7, 0.0);
  Expect += denseString(*PauliString::parse("YY"), 2) * Complex(-0.3, 0.0);
  EXPECT_NEAR(H.toMatrix().maxAbsDiff(Expect), 0.0, 1e-14);
}

TEST(HamiltonianTest, DenseMatrixIsHermitian) {
  RNG Rng(24);
  Hamiltonian H(3);
  for (int K = 0; K < 6; ++K)
    H.addTerm(Rng.gaussian(), randomString(3, Rng));
  if (H.empty())
    GTEST_SKIP();
  Matrix M = H.toMatrix();
  EXPECT_NEAR(M.maxAbsDiff(M.adjoint()), 0.0, 1e-12);
}

TEST(CommutingGroupsTest, PartitionIsValidAndComplete) {
  RNG Rng(141);
  Hamiltonian H(5);
  for (int K = 0; K < 30; ++K)
    H.addTerm(Rng.gaussian() + 2.0, randomString(5, Rng));
  Hamiltonian M = H.merged();
  auto Groups = groupCommutingTerms(M);
  EXPECT_TRUE(isValidCommutingPartition(M, Groups));
  size_t Total = 0;
  for (const auto &G : Groups)
    Total += G.size();
  EXPECT_EQ(Total, M.numTerms());
}

TEST(CommutingGroupsTest, FullyCommutingCollapsesToOneGroup) {
  // All-Z strings mutually commute.
  Hamiltonian H = Hamiltonian::parse(
      {{1.0, "ZZII"}, {0.5, "IZZI"}, {0.3, "ZIIZ"}, {0.2, "IIZZ"}});
  auto Groups = groupCommutingTerms(H);
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].size(), 4u);
}

TEST(CommutingGroupsTest, AnticommutingPairSplits) {
  Hamiltonian H = Hamiltonian::parse({{1.0, "X"}, {1.0, "Z"}});
  auto Groups = groupCommutingTerms(H);
  EXPECT_EQ(Groups.size(), 2u);
}

TEST(CommutingGroupsTest, ValidatorCatchesBadPartitions) {
  Hamiltonian H = Hamiltonian::parse({{1.0, "X"}, {1.0, "Z"}});
  // Anticommuting pair in one group.
  EXPECT_FALSE(isValidCommutingPartition(H, {{0, 1}}));
  // Missing term.
  EXPECT_FALSE(isValidCommutingPartition(H, {{0}}));
  // Duplicated term.
  EXPECT_FALSE(isValidCommutingPartition(H, {{0}, {0}, {1}}));
  // Correct partition.
  EXPECT_TRUE(isValidCommutingPartition(H, {{0}, {1}}));
}

TEST(HamiltonianIOTest, ReadsWellFormedInput) {
  std::istringstream IS("# a comment\n"
                        "1.0  IIIZ\n"
                        "\n"
                        "-0.5 XXYY # trailing comment\n");
  std::string Error;
  auto H = readHamiltonian(IS, &Error);
  ASSERT_TRUE(H.has_value()) << Error;
  EXPECT_EQ(H->numQubits(), 4u);
  EXPECT_EQ(H->numTerms(), 2u);
  EXPECT_DOUBLE_EQ(H->term(1).Coeff, -0.5);
}

TEST(HamiltonianIOTest, RejectsMalformedInput) {
  std::string Error;
  {
    std::istringstream IS("1.0 XQ\n");
    EXPECT_FALSE(readHamiltonian(IS, &Error).has_value());
    EXPECT_NE(Error.find("malformed Pauli string"), std::string::npos);
  }
  {
    std::istringstream IS("abc XX\n");
    EXPECT_FALSE(readHamiltonian(IS, &Error).has_value());
    EXPECT_NE(Error.find("malformed coefficient"), std::string::npos);
  }
  {
    std::istringstream IS("1.0 XX\n1.0 XXX\n");
    EXPECT_FALSE(readHamiltonian(IS, &Error).has_value());
    EXPECT_NE(Error.find("inconsistent"), std::string::npos);
  }
  {
    std::istringstream IS("1.0 XX extra\n");
    EXPECT_FALSE(readHamiltonian(IS, &Error).has_value());
  }
  {
    std::istringstream IS("# only comments\n");
    EXPECT_FALSE(readHamiltonian(IS, &Error).has_value());
    EXPECT_NE(Error.find("no terms"), std::string::npos);
  }
}

TEST(HamiltonianIOTest, WriteReadRoundTrip) {
  Hamiltonian H = Hamiltonian::parse(
      {{1.0 / 3.0, "IXYZ"}, {-0.125, "ZZII"}, {2.75, "YIYI"}});
  std::ostringstream OS;
  writeHamiltonian(H, OS);
  std::istringstream IS(OS.str());
  auto Back = readHamiltonian(IS);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->numTerms(), H.numTerms());
  for (size_t I = 0; I < H.numTerms(); ++I) {
    EXPECT_TRUE(Back->term(I).String == H.term(I).String);
    EXPECT_DOUBLE_EQ(Back->term(I).Coeff, H.term(I).Coeff);
  }
}

TEST(PauliSumTest, ScalarAndTermConstruction) {
  PauliSum S = PauliSum::scalar(Complex(2, 1));
  EXPECT_EQ(S.numTerms(), 1u);
  PauliSum T = PauliSum::term(Complex(0, 1), *PauliString::parse("X"));
  EXPECT_FALSE(T.isZero());
}

TEST(PauliSumTest, ProductMatchesDense) {
  RNG Rng(25);
  const unsigned N = 3;
  for (int Trial = 0; Trial < 20; ++Trial) {
    PauliSum A, B;
    Matrix DA(1 << N, 1 << N), DB(1 << N, 1 << N);
    for (int K = 0; K < 3; ++K) {
      PauliString P = randomString(N, Rng);
      Complex C(Rng.gaussian(), Rng.gaussian());
      A.add(C, P);
      DA += denseString(P, N) * C;
      PauliString Q = randomString(N, Rng);
      Complex D(Rng.gaussian(), Rng.gaussian());
      B.add(D, Q);
      DB += denseString(Q, N) * D;
    }
    PauliSum Prod = A * B;
    Matrix DProd(1 << N, 1 << N);
    for (const auto &[P, C] : Prod.terms())
      DProd += denseString(P, N) * C;
    ASSERT_NEAR(DProd.maxAbsDiff(DA * DB), 0.0, 1e-10);
  }
}

TEST(PauliSumTest, AdjointAndHermiticity) {
  PauliSum S;
  S.add(Complex(0, 1), *PauliString::parse("X"));
  EXPECT_FALSE(S.isHermitian());
  PauliSum H = S + S.adjoint();
  EXPECT_TRUE(H.isZero()); // iX + (-i)X = 0
  PauliSum R;
  R.add(Complex(0.5, 0), *PauliString::parse("Z"));
  EXPECT_TRUE(R.isHermitian());
}

TEST(PauliSumTest, PruneRemovesTinyTerms) {
  PauliSum S;
  S.add(Complex(1e-15, 0), *PauliString::parse("X"));
  S.add(Complex(1.0, 0), *PauliString::parse("Z"));
  S.prune(1e-12);
  EXPECT_EQ(S.numTerms(), 1u);
}

TEST(PauliSumTest, ToHamiltonianDropsIdentity) {
  PauliSum S;
  S.add(Complex(3.0, 0), PauliString());
  S.add(Complex(0.5, 0), *PauliString::parse("ZZ"));
  Hamiltonian H = S.toHamiltonian(2);
  EXPECT_EQ(H.numTerms(), 1u);
  EXPECT_DOUBLE_EQ(H.term(0).Coeff, 0.5);
  Hamiltonian HKeep = S.toHamiltonian(2, /*DropIdentity=*/false);
  EXPECT_EQ(HKeep.numTerms(), 2u);
}
