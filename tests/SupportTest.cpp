//===- tests/SupportTest.cpp - support library tests --------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/RNG.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace marqsim;

TEST(RNGTest, DeterministicStreams) {
  RNG A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool AnyDifferent = false;
  RNG A2(42);
  for (int I = 0; I < 100; ++I)
    AnyDifferent |= A2.next() != C.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RNGTest, ReseedResetsStream) {
  RNG A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RNGTest, UniformInUnitInterval) {
  RNG Rng(1);
  for (int I = 0; I < 10000; ++I) {
    double U = Rng.uniform();
    ASSERT_GE(U, 0.0);
    ASSERT_LT(U, 1.0);
  }
}

TEST(RNGTest, UniformMeanAndVariance) {
  RNG Rng(2);
  double Sum = 0, Sum2 = 0;
  const int N = 200000;
  for (int I = 0; I < N; ++I) {
    double U = Rng.uniform();
    Sum += U;
    Sum2 += U * U;
  }
  double Mean = Sum / N;
  double Var = Sum2 / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.5, 5e-3);
  EXPECT_NEAR(Var, 1.0 / 12.0, 5e-3);
}

TEST(RNGTest, UniformIntBoundsAndCoverage) {
  RNG Rng(3);
  std::vector<int> Counts(7, 0);
  for (int I = 0; I < 70000; ++I) {
    uint64_t V = Rng.uniformInt(7);
    ASSERT_LT(V, 7u);
    ++Counts[V];
  }
  for (int C : Counts)
    EXPECT_NEAR(C, 10000, 500);
}

TEST(RNGTest, GaussianMoments) {
  RNG Rng(4);
  double Sum = 0, Sum2 = 0;
  const int N = 200000;
  for (int I = 0; I < N; ++I) {
    double G = Rng.gaussian();
    Sum += G;
    Sum2 += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 1e-2);
  EXPECT_NEAR(Sum2 / N, 1.0, 2e-2);
}

TEST(RNGTest, BernoulliProbability) {
  RNG Rng(5);
  int Hits = 0;
  for (int I = 0; I < 100000; ++I)
    Hits += Rng.bernoulli(0.3);
  EXPECT_NEAR(Hits / 1e5, 0.3, 1e-2);
}

TEST(RNGTest, SampleDiscreteMatchesWeights) {
  RNG Rng(6);
  std::vector<double> W = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> Counts(4, 0);
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    ++Counts[Rng.sampleDiscrete(W)];
  EXPECT_EQ(Counts[2], 0);
  EXPECT_NEAR(Counts[0] / double(N), 0.1, 0.01);
  EXPECT_NEAR(Counts[1] / double(N), 0.3, 0.01);
  EXPECT_NEAR(Counts[3] / double(N), 0.6, 0.01);
}

TEST(RNGTest, SplitDecorrelates) {
  RNG Parent(9);
  RNG Child = Parent.split();
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += Parent.next() == Child.next();
  EXPECT_LT(Same, 3);
}

TEST(TableTest, AlignedOutput) {
  Table T({"name", "value"});
  T.row("alpha", 1);
  T.row("b", 22);
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("22"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, CSVOutput) {
  Table T({"a", "b"});
  T.row(1, 2);
  std::ostringstream OS;
  T.printCSV(OS);
  EXPECT_EQ(OS.str(), "a,b\n1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(formatDouble(0.0), "0.0000");
  // Moderate magnitudes use fixed/short form; extremes use scientific.
  EXPECT_NE(formatDouble(123.456).find("123.4"), std::string::npos);
  EXPECT_NE(formatDouble(1e-9).find("e"), std::string::npos);
}

TEST(TableTest, FormatPercent) {
  EXPECT_EQ(formatPercent(0.237), "23.7%");
  EXPECT_EQ(formatPercent(0.5, 0), "50%");
}

TEST(CommandLineTest, ParsesFlagsAndPositionals) {
  const char *Argv[] = {"prog", "--alpha=3",  "--beta", "7",
                        "--gamma", "pos1", "--flag"};
  CommandLine CL(7, Argv);
  EXPECT_EQ(CL.getInt("alpha", 0), 3);
  EXPECT_EQ(CL.getInt("beta", 0), 7);
  EXPECT_EQ(CL.getString("gamma"), "pos1");
  EXPECT_TRUE(CL.getBool("flag"));
  EXPECT_FALSE(CL.getBool("absent"));
  EXPECT_EQ(CL.getDouble("absent", 2.5), 2.5);
}

TEST(CommandLineTest, BoolForms) {
  const char *Argv[] = {"prog", "--a=true", "--b=0", "--c"};
  CommandLine CL(4, Argv);
  EXPECT_TRUE(CL.getBool("a"));
  EXPECT_FALSE(CL.getBool("b"));
  EXPECT_TRUE(CL.getBool("c"));
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + std::sqrt(static_cast<double>(I));
  double First = T.seconds();
  EXPECT_GE(First, 0.0);
  EXPECT_GE(T.seconds(), First); // monotone
  T.reset();
  EXPECT_LT(T.seconds(), First + 1.0);
}
