//===- tests/ServiceTest.cpp - SimulationService / cache contracts ------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contracts of the declarative front-end:
//   * Hamiltonian::fingerprint is order/duplication-insensitive content
//     hashing,
//   * the artifact caches key on exactly (fingerprint, weights, flow
//     options, rounds/perturb seed, time, columns) — equal content hits,
//     any knob change misses,
//   * concurrent runs never duplicate an MCFP solve,
//   * the on-disk component store round-trips bit-exactly across service
//     instances,
//   * in-worker fidelity equals the caller-thread evaluator loop and is
//     bit-identical for every job count,
//   * a fig14-style ratio sweep performs exactly one gate-cancellation
//     solve per (Hamiltonian, MCFPOptions).
//
//===----------------------------------------------------------------------===//

#include "service/SimulationService.h"
#include "shard/ShardCoordinator.h"
#include "support/Serial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace marqsim;

namespace {

/// A small strongly-interacting Hamiltonian for service tests.
Hamiltonian testHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"},
                             {0.2, "XYYZ"}});
}

/// The same operator with the term list permuted.
Hamiltonian permutedHamiltonian() {
  return Hamiltonian::parse({{0.4, "IZZX"},
                             {0.2, "XYYZ"},
                             {1.0, "IIZY"},
                             {0.6, "ZXZY"},
                             {0.8, "XXII"}});
}

/// A baseline sampling spec over \p H with the GC mix.
TaskSpec testSpec(Hamiltonian H) {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(std::move(H));
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.5;
  Spec.Epsilon = 0.05;
  Spec.Shots = 6;
  Spec.Seed = 31337;
  return Spec;
}

/// Writes \p H's term list to a fresh file under the test temp dir.
std::string writeHamiltonianFile(const Hamiltonian &H, const char *Name) {
  std::string Path = testing::TempDir() + Name;
  std::ofstream Out(Path);
  for (const PauliTerm &T : H.terms())
    Out << T.Coeff << " " << T.String.str(H.numQubits()) << "\n";
  return Path;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hamiltonian::fingerprint
//===----------------------------------------------------------------------===//

TEST(FingerprintTest, InsensitiveToTermOrderAndDuplication) {
  EXPECT_EQ(testHamiltonian().fingerprint(),
            permutedHamiltonian().fingerprint());
  // Duplicated terms merge back to the same content.
  Hamiltonian Split = Hamiltonian::parse(
      {{0.5, "XZ"}, {0.25, "YY"}, {0.5, "XZ"}});
  Hamiltonian Whole = Hamiltonian::parse({{1.0, "XZ"}, {0.25, "YY"}});
  EXPECT_EQ(Split.fingerprint(), Whole.fingerprint());
}

TEST(FingerprintTest, SensitiveToContent) {
  uint64_t Base = testHamiltonian().fingerprint();
  Hamiltonian Coeff = Hamiltonian::parse({{1.0, "IIZY"},
                                          {0.8, "XXII"},
                                          {0.6, "ZXZY"},
                                          {0.4, "IZZX"},
                                          {0.25, "XYYZ"}});
  EXPECT_NE(Base, Coeff.fingerprint());
  Hamiltonian String = Hamiltonian::parse({{1.0, "IIZY"},
                                           {0.8, "XXII"},
                                           {0.6, "ZXZY"},
                                           {0.4, "IZZX"},
                                           {0.2, "XYYX"}});
  EXPECT_NE(Base, String.fingerprint());
  // Same masks, larger register.
  Hamiltonian Narrow = testHamiltonian();
  Hamiltonian Wide(5);
  for (const PauliTerm &T : Narrow.terms())
    Wide.addTerm(T.Coeff, T.String);
  EXPECT_NE(Base, Wide.fingerprint());
}

//===----------------------------------------------------------------------===//
// Cache keying
//===----------------------------------------------------------------------===//

TEST(ServiceCacheTest, TermPermutedSourcesShareOneEntry) {
  // The same operator from two files with permuted term lists: one MCFP
  // solve, one graph, and bit-identical batches.
  std::string PathA = writeHamiltonianFile(testHamiltonian(), "svc_a.txt");
  std::string PathB =
      writeHamiltonianFile(permutedHamiltonian(), "svc_b.txt");

  SimulationService Service;
  TaskSpec Spec = testSpec(testHamiltonian());
  Spec.Source = HamiltonianSource::fromFile(PathA);
  std::string Error;
  std::optional<TaskResult> A = Service.run(Spec, &Error);
  ASSERT_TRUE(A) << Error;
  Spec.Source = HamiltonianSource::fromFile(PathB);
  std::optional<TaskResult> B = Service.run(Spec, &Error);
  ASSERT_TRUE(B) << Error;

  EXPECT_EQ(A->Fingerprint, B->Fingerprint);
  EXPECT_EQ(A->Batch.batchHash(), B->Batch.batchHash());
  EXPECT_EQ(A->Stats.GCSolveMisses, 1u);
  EXPECT_EQ(A->Stats.GraphMisses, 1u);
  EXPECT_EQ(B->Stats.GCSolveMisses, 0u);
  EXPECT_EQ(B->Stats.GraphHits, 1u);
  EXPECT_EQ(Service.stats().GCSolveMisses, 1u);
}

TEST(ServiceCacheTest, EveryKeyComponentMisses) {
  SimulationService Service;
  TaskSpec Base = testSpec(testHamiltonian());
  Base.Mix = *ChannelMix::preset("gc-rp");
  Base.Evaluate.FidelityColumns = 4;
  ASSERT_TRUE(Service.run(Base));
  CacheStats First = Service.stats();
  EXPECT_EQ(First.GCSolveMisses, 1u);
  EXPECT_EQ(First.RPSolveMisses, 1u);
  EXPECT_EQ(First.GraphMisses, 1u);
  EXPECT_EQ(First.EvaluatorMisses, 1u);

  // Identical spec: everything hits.
  ASSERT_TRUE(Service.run(Base));
  CacheStats Same = Service.stats();
  EXPECT_EQ(Same.matrixMisses(), First.matrixMisses());
  EXPECT_EQ(Same.GraphMisses, First.GraphMisses);
  EXPECT_EQ(Same.EvaluatorMisses, First.EvaluatorMisses);

  // Different weights: new graph, but the component solves are reused.
  TaskSpec Weights = Base;
  Weights.Mix = ChannelMix{0.2, 0.4, 0.4};
  ASSERT_TRUE(Service.run(Weights));
  CacheStats AfterWeights = Service.stats();
  EXPECT_EQ(AfterWeights.GraphMisses, First.GraphMisses + 1);
  EXPECT_EQ(AfterWeights.matrixMisses(), First.matrixMisses());
  EXPECT_GT(AfterWeights.matrixHits(), Same.matrixHits());

  // Different perturbation rounds: Prp re-solves, Pgc does not.
  TaskSpec Rounds = Base;
  Rounds.PerturbRounds = Base.PerturbRounds + 3;
  ASSERT_TRUE(Service.run(Rounds));
  CacheStats AfterRounds = Service.stats();
  EXPECT_EQ(AfterRounds.RPSolveMisses, First.RPSolveMisses + 1);
  EXPECT_EQ(AfterRounds.GCSolveMisses, First.GCSolveMisses);

  // Different MCFP encoding: both components re-solve.
  TaskSpec Flow = Base;
  Flow.Flow.ProbScale = 1'000'000;
  ASSERT_TRUE(Service.run(Flow));
  CacheStats AfterFlow = Service.stats();
  EXPECT_EQ(AfterFlow.GCSolveMisses, AfterRounds.GCSolveMisses + 1);
  EXPECT_EQ(AfterFlow.RPSolveMisses, AfterRounds.RPSolveMisses + 1);

  // Different evolution time: the evaluator re-targets, the graph and
  // matrices do not (time only changes the sampling budget).
  TaskSpec Time = Base;
  Time.Time = 0.75;
  ASSERT_TRUE(Service.run(Time));
  CacheStats AfterTime = Service.stats();
  EXPECT_EQ(AfterTime.EvaluatorMisses, AfterFlow.EvaluatorMisses + 1);
  EXPECT_EQ(AfterTime.GraphMisses, AfterFlow.GraphMisses);
  EXPECT_EQ(AfterTime.matrixMisses(), AfterFlow.matrixMisses());

  // Different fidelity columns: evaluator misses again.
  TaskSpec Columns = Base;
  Columns.Evaluate.FidelityColumns = 8;
  ASSERT_TRUE(Service.run(Columns));
  EXPECT_EQ(Service.stats().EvaluatorMisses,
            AfterTime.EvaluatorMisses + 1);
}

TEST(ServiceCacheTest, ConcurrentRunsNeverDuplicateASolve) {
  SimulationService Service;
  TaskSpec Spec = testSpec(testHamiltonian());
  std::optional<TaskResult> A, B;
  std::thread T1([&] { A = Service.run(Spec); });
  std::thread T2([&] { B = Service.run(Spec); });
  T1.join();
  T2.join();
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Batch.batchHash(), B->Batch.batchHash());
  // One thread built the bundle (solving the MCFP inside), the other
  // blocked on the in-flight entry and reused it: exactly one solve and
  // one graph hit, never two solves.
  CacheStats S = Service.stats();
  EXPECT_EQ(S.GCSolveMisses, 1u);
  EXPECT_EQ(S.GraphMisses, 1u);
  EXPECT_EQ(S.GraphHits, 1u);
}

TEST(ServiceCacheTest, DiskStorePersistsAcrossServices) {
  // A fresh store: leftovers from earlier runs would turn the cold
  // service's solve into a disk hit.
  std::string Dir = testing::TempDir() + "svc_disk_cache";
  std::filesystem::remove_all(Dir);

  ServiceOptions Options;
  Options.CacheDir = Dir;
  TaskSpec Spec = testSpec(testHamiltonian());

  uint64_t FirstHash = 0;
  {
    SimulationService Cold(Options);
    std::optional<TaskResult> R = Cold.run(Spec);
    ASSERT_TRUE(R);
    FirstHash = R->Batch.batchHash();
    EXPECT_EQ(Cold.stats().GCSolveMisses, 1u);
    EXPECT_EQ(Cold.stats().DiskLoads, 0u);
  }
  // A fresh service (fresh process, conceptually) loads the solved matrix
  // from disk: a hit, not a solve, and the batch replays bit-exactly.
  SimulationService Warm(Options);
  std::optional<TaskResult> R = Warm.run(Spec);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Batch.batchHash(), FirstHash);
  EXPECT_EQ(Warm.stats().GCSolveMisses, 0u);
  EXPECT_EQ(Warm.stats().GCSolveHits, 1u);
  EXPECT_EQ(Warm.stats().DiskLoads, 1u);
}

TEST(ServiceCacheTest, DiskStoreCorruptionFallsBackToReSolve) {
  // The fallback path of the tiered store: a damaged component file must
  // never poison a run. Truncation and single-character flips both fail
  // the store's whole-file checksum, the service silently re-solves, and
  // the batch is bit-identical to the healthy-cache run. The alias-bundle
  // tier sits above the components, so it is removed before each warm run
  // here; StoreTest covers the per-type fallbacks (including the bundle
  // masking a corrupt component).
  std::string Dir = testing::TempDir() + "svc_corrupt_cache";
  std::filesystem::remove_all(Dir);
  ServiceOptions Options;
  Options.CacheDir = Dir;
  TaskSpec Spec = testSpec(testHamiltonian());

  uint64_t CleanHash = 0;
  {
    SimulationService Cold(Options);
    std::optional<TaskResult> R = Cold.run(Spec);
    ASSERT_TRUE(R);
    CleanHash = R->Batch.batchHash();
  }
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".mat")
      Files.push_back(Entry.path());
  ASSERT_EQ(Files.size(), 1u); // one Pgc component for the gc mix

  auto ReadAll = [](const std::filesystem::path &P) {
    std::ifstream In(P);
    return std::string((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  };
  auto DropAliasTier = [&Dir] {
    for (const auto &Entry : std::filesystem::directory_iterator(Dir))
      if (Entry.path().extension() == ".alias")
        std::filesystem::remove(Entry.path());
  };
  const std::string Healthy = ReadAll(Files[0]);

  // Truncation: drop the second half of the file.
  std::ofstream(Files[0]) << Healthy.substr(0, Healthy.size() / 2);
  DropAliasTier();
  {
    SimulationService Service(Options);
    std::optional<TaskResult> R = Service.run(Spec);
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Batch.batchHash(), CleanHash);
    EXPECT_EQ(Service.stats().GCSolveMisses, 1u) << "must re-solve";
    EXPECT_EQ(Service.stats().DiskLoads, 0u);
  }
  // The re-solve overwrote the damaged artifact: healed, byte-identical.
  EXPECT_EQ(ReadAll(Files[0]), Healthy);

  // Bit flip: change one payload character. The hex would still parse —
  // into a *different* matrix — so only the checksum stands between a
  // flipped bit and silently divergent schedules.
  std::string Flipped = Healthy;
  size_t Pos = Flipped.find('\n') + 3; // inside the first entry's hex
  Flipped[Pos] = Flipped[Pos] == '0' ? '1' : '0';
  std::ofstream(Files[0]) << Flipped;
  DropAliasTier();
  {
    SimulationService Service(Options);
    std::optional<TaskResult> R = Service.run(Spec);
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Batch.batchHash(), CleanHash);
    EXPECT_EQ(Service.stats().GCSolveMisses, 1u) << "must re-solve";
    EXPECT_EQ(Service.stats().DiskLoads, 0u);
  }
  EXPECT_EQ(ReadAll(Files[0]), Healthy);

  // Control: an undamaged store is a disk hit (the alias bundle, which
  // subsumes the component), no solve.
  SimulationService Warm(Options);
  ASSERT_TRUE(Warm.run(Spec));
  EXPECT_EQ(Warm.stats().GCSolveMisses, 0u);
  EXPECT_EQ(Warm.stats().DiskLoads, 1u);
}

TEST(ServiceCacheTest, RatioSweepPerformsOneGCSolve) {
  // The fig14 shape: four (Pqd, Pgc) ratios x two epsilons over one
  // Hamiltonian must cost exactly one gate-cancellation MCFP solve.
  SimulationService Service;
  const ChannelMix Ratios[] = {{1.0, 0.0, 0.0},
                               {0.8, 0.2, 0.0},
                               {0.4, 0.6, 0.0},
                               {0.2, 0.8, 0.0}};
  for (const ChannelMix &Mix : Ratios)
    for (double Eps : {0.1, 0.05}) {
      TaskSpec Spec = testSpec(testHamiltonian());
      Spec.Mix = Mix;
      Spec.Epsilon = Eps;
      ASSERT_TRUE(Service.run(Spec));
    }
  CacheStats S = Service.stats();
  EXPECT_EQ(S.GCSolveMisses, 1u);
  EXPECT_EQ(S.GCSolveHits, 2u);  // the other two GC-weighted ratios
  EXPECT_EQ(S.GraphMisses, 4u);  // one bundle per ratio
  EXPECT_EQ(S.GraphHits, 4u);    // the second epsilon of each ratio
}

//===----------------------------------------------------------------------===//
// In-worker fidelity
//===----------------------------------------------------------------------===//

TEST(ServiceFidelityTest, JobInvariantAndEqualToCallerThreadLoop) {
  SimulationService Service;
  TaskSpec Spec = testSpec(testHamiltonian());
  Spec.Shots = 8;
  Spec.Evaluate.FidelityColumns = 6;
  Spec.Evaluate.KeepResults = true;

  Spec.Jobs = 1;
  std::optional<TaskResult> Serial = Service.run(Spec);
  Spec.Jobs = 8;
  std::optional<TaskResult> Parallel = Service.run(Spec);
  ASSERT_TRUE(Serial && Parallel);
  ASSERT_EQ(Serial->ShotFidelities.size(), Spec.Shots);

  // Bit-identical across job counts (not just approximately equal).
  EXPECT_EQ(Serial->Batch.batchHash(), Parallel->Batch.batchHash());
  for (size_t Shot = 0; Shot < Spec.Shots; ++Shot)
    EXPECT_EQ(Serial->ShotFidelities[Shot], Parallel->ShotFidelities[Shot])
        << "shot " << Shot;
  EXPECT_EQ(Serial->Fidelity.Mean, Parallel->Fidelity.Mean);
  EXPECT_EQ(Serial->Fidelity.Std, Parallel->Fidelity.Std);

  // Equal to the old caller-thread path: a manual evaluator loop over the
  // retained results, built against the same canonical Hamiltonian.
  Hamiltonian Prepared = SimulationService::prepare(testHamiltonian());
  FidelityEvaluator Manual(Prepared, Spec.Time,
                           Spec.Evaluate.FidelityColumns,
                           Spec.Evaluate.ColumnSeed);
  ASSERT_EQ(Serial->Batch.Results.size(), Spec.Shots);
  for (size_t Shot = 0; Shot < Spec.Shots; ++Shot)
    EXPECT_EQ(Serial->ShotFidelities[Shot],
              Manual.fidelity(Serial->Batch.Results[Shot].Schedule))
        << "shot " << Shot;
}

TEST(ServiceFidelityTest, EvalJobsBitIdenticalAndTimed) {
  SimulationService Service;
  TaskSpec Spec = testSpec(testHamiltonian());
  Spec.Shots = 4;
  // 12 columns = two fixed-width panel blocks, so EvalJobs > 1 actually
  // redistributes work.
  Spec.Evaluate.FidelityColumns = 12;

  Spec.EvalJobs = 1;
  std::optional<TaskResult> Serial = Service.run(Spec);
  Spec.EvalJobs = 3;
  std::optional<TaskResult> FannedOut = Service.run(Spec);
  Spec.EvalJobs = 0; // all cores
  std::optional<TaskResult> AllCores = Service.run(Spec);
  ASSERT_TRUE(Serial && FannedOut && AllCores);

  EXPECT_EQ(Serial->Batch.batchHash(), FannedOut->Batch.batchHash());
  ASSERT_EQ(Serial->ShotFidelities.size(), Spec.Shots);
  for (size_t Shot = 0; Shot < Spec.Shots; ++Shot) {
    EXPECT_EQ(Serial->ShotFidelities[Shot], FannedOut->ShotFidelities[Shot])
        << "shot " << Shot;
    EXPECT_EQ(Serial->ShotFidelities[Shot], AllCores->ShotFidelities[Shot])
        << "shot " << Shot;
  }
  EXPECT_EQ(Serial->Fidelity.Mean, FannedOut->Fidelity.Mean);
  EXPECT_EQ(Serial->Fidelity.Std, FannedOut->Fidelity.Std);

  // The evaluation phase is real work here, so its accounting is nonzero.
  EXPECT_GT(Serial->Batch.EvalSeconds, 0.0);
}

TEST(ServiceFidelityTest, EvalJobsTravelsThroughShardWorkersByteIdentically) {
  // The within-shot knob must survive the shard path end to end: it is
  // placed on the worker command line, and a sharded run under any
  // EvalJobs merges to the exact bytes of the single-process run.
  TaskSpec Spec = testSpec(testHamiltonian());
  Spec.Shots = 5;
  Spec.Evaluate.FidelityColumns = 12;
  Spec.EvalJobs = 3;

  // Command-line transport: workerArgs forwards the knob verbatim.
  TaskSpec FileSpec = Spec;
  FileSpec.Source = HamiltonianSource::fromFile("h.txt");
  std::optional<std::vector<std::string>> Argv = ShardCoordinator::workerArgs(
      "marqsim-cli", FileSpec, 0, 2, "out.manifest", "");
  ASSERT_TRUE(Argv);
  EXPECT_NE(std::find(Argv->begin(), Argv->end(),
                      std::string("--eval-jobs=3")),
            Argv->end());

  SimulationService Single;
  TaskSpec SerialSpec = Spec;
  SerialSpec.EvalJobs = 1;
  std::optional<TaskResult> Unsharded = Single.run(SerialSpec);
  ASSERT_TRUE(Unsharded);

  ShardOptions Options;
  Options.ShardCount = 2;
  Options.WorkDir = testing::TempDir() + "mq-evaljobs-shards";
  std::filesystem::remove_all(Options.WorkDir);
  ShardCoordinator Coordinator(Options); // in-process workers
  std::string Error;
  std::optional<TaskResult> Sharded = Coordinator.run(Spec, &Error);
  ASSERT_TRUE(Sharded) << Error;

  EXPECT_EQ(Sharded->Batch.batchHash(), Unsharded->Batch.batchHash());
  ASSERT_EQ(Sharded->ShotFidelities.size(), Unsharded->ShotFidelities.size());
  for (size_t Shot = 0; Shot < Spec.Shots; ++Shot)
    EXPECT_EQ(serial::doubleBits(Sharded->ShotFidelities[Shot]),
              serial::doubleBits(Unsharded->ShotFidelities[Shot]))
        << "shot " << Shot;
  EXPECT_EQ(Sharded->Fidelity.Mean, Unsharded->Fidelity.Mean);
  // The merge carries the workers' evaluation accounting through.
  EXPECT_GT(Sharded->Batch.EvalSeconds, 0.0);
  std::filesystem::remove_all(Options.WorkDir);
}

//===----------------------------------------------------------------------===//
// Task surface
//===----------------------------------------------------------------------===//

TEST(ServiceTaskTest, ShotZeroMatchesRetainedResults) {
  SimulationService Service;
  TaskSpec Spec = testSpec(testHamiltonian());
  Spec.Shots = 3;
  Spec.Jobs = 3;
  Spec.Evaluate.ExportShotZero = true;
  Spec.Evaluate.KeepResults = true;
  std::optional<TaskResult> R = Service.run(Spec);
  ASSERT_TRUE(R);
  ASSERT_TRUE(R->HasShotZero);
  EXPECT_EQ(R->ShotZero.Sequence, R->Batch.Results[0].Sequence);
  EXPECT_EQ(R->ShotZero.Counts.CNOTs, R->Batch.Results[0].Counts.CNOTs);
}

TEST(ServiceTaskTest, TrotterTasksReplicateDeterministically) {
  SimulationService Service;
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(testHamiltonian());
  Spec.Method = TaskMethod::Trotter;
  Spec.Time = 0.7;
  Spec.TrotterReps = 4;
  Spec.TrotterOrder = 2;
  Spec.Order = TermOrderKind::Lexicographic;
  Spec.Shots = 5;
  Spec.Evaluate.FidelityColumns = 4;
  std::optional<TaskResult> R = Service.run(Spec);
  ASSERT_TRUE(R);
  EXPECT_DOUBLE_EQ(R->Batch.CNOTs.Std, 0.0);
  for (size_t Shot = 1; Shot < Spec.Shots; ++Shot)
    EXPECT_EQ(R->ShotFidelities[Shot], R->ShotFidelities[0]);
  // No sampling artifacts were needed.
  EXPECT_EQ(Service.stats().GraphMisses, 0u);
  EXPECT_EQ(Service.stats().matrixMisses(), 0u);
}

TEST(ServiceTaskTest, TrotterPreservesDeclaredTermOrder) {
  // Trotter-family tasks must compile the operator exactly as given:
  // canonicalization (which sorts terms) would make TermOrderKind::Given
  // indistinguishable from Lexicographic. testHamiltonian()'s declared
  // order differs from its sorted order, so the two schedules must too.
  SimulationService Service;
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(testHamiltonian());
  Spec.Method = TaskMethod::Trotter;
  Spec.Time = 0.7;
  Spec.TrotterReps = 2;
  Spec.Order = TermOrderKind::Given;
  Spec.Evaluate.ExportShotZero = true;
  std::optional<TaskResult> Given = Service.run(Spec);
  Spec.Order = TermOrderKind::Lexicographic;
  std::optional<TaskResult> Lex = Service.run(Spec);
  ASSERT_TRUE(Given && Lex);
  EXPECT_NE(Given->ShotZero.Sequence, Lex->ShotZero.Sequence);
  // The declared order survives into the schedule: repetition 1 visits
  // the terms in declaration order.
  const Hamiltonian H = testHamiltonian();
  ASSERT_GE(Given->ShotZero.Sequence.size(), H.numTerms());
  for (size_t I = 0; I < H.numTerms(); ++I)
    EXPECT_EQ(Given->ShotZero.Sequence[I], I) << "visit " << I;
}

TEST(ServiceTaskTest, InvalidSpecsAndSourcesAreRejected) {
  SimulationService Service;
  std::string Error;

  TaskSpec BadTime = testSpec(testHamiltonian());
  BadTime.Time = -1.0;
  EXPECT_FALSE(Service.run(BadTime, &Error));
  EXPECT_NE(Error.find("time"), std::string::npos);

  TaskSpec BadEps = testSpec(testHamiltonian());
  BadEps.Epsilon = 0.0;
  EXPECT_FALSE(Service.run(BadEps, &Error));

  TaskSpec BadMix = testSpec(testHamiltonian());
  BadMix.Mix = ChannelMix{0.0, 0.0, 0.0};
  EXPECT_FALSE(Service.run(BadMix, &Error));

  // Zero perturbation rounds with a live Prp weight would divide by zero
  // inside buildRandomPerturbation (and poison the disk cache with NaNs).
  TaskSpec BadRounds = testSpec(testHamiltonian());
  BadRounds.Mix = *ChannelMix::preset("gc-rp");
  BadRounds.PerturbRounds = 0;
  EXPECT_FALSE(Service.run(BadRounds, &Error));
  EXPECT_NE(Error.find("perturbation round"), std::string::npos);

  TaskSpec BadFile = testSpec(testHamiltonian());
  BadFile.Source = HamiltonianSource::fromFile(testing::TempDir() +
                                               "does_not_exist.txt");
  EXPECT_FALSE(Service.run(BadFile, &Error));

  TaskSpec BadModel = testSpec(testHamiltonian());
  BadModel.Source = HamiltonianSource::fromModel("NotABenchmark");
  EXPECT_FALSE(Service.run(BadModel, &Error));
  EXPECT_NE(Error.find("NotABenchmark"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TaskSpec CLI parsing (shared flag surface)
//===----------------------------------------------------------------------===//

namespace {

std::optional<TaskSpec> parseArgs(std::vector<const char *> Args,
                                  std::string *Error = nullptr) {
  Args.insert(Args.begin(), "prog");
  CommandLine CL(static_cast<int>(Args.size()), Args.data());
  return TaskSpec::fromCommandLine(CL, Error);
}

} // namespace

TEST(TaskSpecParseTest, RejectsNegativeAndNonPositiveFlags) {
  std::string Error;
  // --rounds=-3 used to wrap to ~4 billion perturbation rounds.
  EXPECT_FALSE(parseArgs({"h.txt", "--rounds=-3"}, &Error));
  EXPECT_NE(Error.find("rounds"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--seed=-1"}, &Error));
  EXPECT_NE(Error.find("seed"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--epsilon=0"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--epsilon=-0.1"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--time=0"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--time=-2"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--shots=0"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--jobs=-2"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--columns=-4"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--eval-jobs=-1"}, &Error));
  EXPECT_NE(Error.find("eval-jobs"), std::string::npos);

  std::optional<TaskSpec> EvalJobs = parseArgs({"h.txt", "--eval-jobs=5"});
  ASSERT_TRUE(EvalJobs);
  EXPECT_EQ(EvalJobs->EvalJobs, 5u);
}

TEST(TaskSpecParseTest, PresetsAndOverridesNormalize) {
  std::optional<TaskSpec> GcRp = parseArgs({"h.txt", "--config=gc-rp"});
  ASSERT_TRUE(GcRp);
  EXPECT_DOUBLE_EQ(GcRp->Mix.WQd, 0.4);
  EXPECT_DOUBLE_EQ(GcRp->Mix.WGc, 0.3);
  EXPECT_DOUBLE_EQ(GcRp->Mix.WRp, 0.3);

  std::optional<TaskSpec> Custom =
      parseArgs({"h.txt", "--qd=1", "--gc=3"});
  ASSERT_TRUE(Custom);
  EXPECT_DOUBLE_EQ(Custom->Mix.WQd, 0.25);
  EXPECT_DOUBLE_EQ(Custom->Mix.WGc, 0.75);
  EXPECT_DOUBLE_EQ(Custom->Mix.WRp, 0.0);

  std::string Error;
  EXPECT_FALSE(parseArgs({"h.txt", "--config=nope"}, &Error));
  EXPECT_NE(Error.find("nope"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--qd=0", "--gc=0"}, &Error));

  // Sources: positional xor --model.
  EXPECT_TRUE(parseArgs({"--model=Na+"}));
  EXPECT_FALSE(parseArgs({"h.txt", "--model=Na+"}, &Error));
  EXPECT_FALSE(parseArgs({}, &Error));
}

TEST(TaskSpecParseTest, PrecisionFlagParsesAndRejectsUnknown) {
  std::optional<TaskSpec> Default = parseArgs({"h.txt"});
  ASSERT_TRUE(Default);
  EXPECT_EQ(Default->Precision, EvalPrecision::FP64);

  std::optional<TaskSpec> Fp64 = parseArgs({"h.txt", "--precision=fp64"});
  ASSERT_TRUE(Fp64);
  EXPECT_EQ(Fp64->Precision, EvalPrecision::FP64);

  std::optional<TaskSpec> Fp32 = parseArgs({"h.txt", "--precision=fp32"});
  ASSERT_TRUE(Fp32);
  EXPECT_EQ(Fp32->Precision, EvalPrecision::FP32);

  std::string Error;
  EXPECT_FALSE(parseArgs({"h.txt", "--precision=half"}, &Error));
  EXPECT_NE(Error.find("precision"), std::string::npos);
  EXPECT_NE(Error.find("half"), std::string::npos);
}

TEST(TaskSpecParseTest, Fp32LeavesFp64ContentKeysUntouched) {
  // The precision knob is mixed into contentKey only when FP32 is
  // selected: every FP64 spec — including ones written before the knob
  // existed — must keep its exact pre-existing key, so on-disk manifests
  // and cache entries stay valid. FP32 must still force a distinct key.
  TaskSpec Base = testSpec(testHamiltonian());
  const uint64_t DefaultKey = Base.contentKey();
  Base.Precision = EvalPrecision::FP64;
  EXPECT_EQ(Base.contentKey(), DefaultKey);
  Base.Precision = EvalPrecision::FP32;
  EXPECT_NE(Base.contentKey(), DefaultKey);
}

TEST(TaskSpecParseTest, ChannelMixRejectsNegativeAndAllZeroWeights) {
  std::string Error;
  // Negative and NaN weights name the offending flag.
  EXPECT_FALSE(parseArgs({"h.txt", "--qd=-0.5", "--gc=1"}, &Error));
  EXPECT_NE(Error.find("--qd"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--rp=-1"}, &Error));
  EXPECT_NE(Error.find("--rp"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--gc=nan"}, &Error));
  EXPECT_NE(Error.find("--gc"), std::string::npos);
  // An all-zero mix cannot normalize; the error says so instead of
  // reporting a generic parse failure.
  EXPECT_FALSE(parseArgs({"h.txt", "--qd=0", "--gc=0", "--rp=0"}, &Error));
  EXPECT_NE(Error.find("all zero"), std::string::npos);
}

TEST(TaskSpecParseTest, RejectsNonFiniteTimeAndEpsilon) {
  // NaN passes every ordered comparison, so `x <= 0` checks used to let
  // --time=nan through to the compiler.
  std::string Error;
  EXPECT_FALSE(parseArgs({"h.txt", "--time=nan"}, &Error));
  EXPECT_NE(Error.find("finite"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--time=inf"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--epsilon=nan"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", "--epsilon=inf"}, &Error));
}

TEST(TaskSpecParseTest, NoiseFlagsParseAndValidate) {
  std::optional<TaskSpec> Noisy = parseArgs(
      {"h.txt", "--noise=depolarizing", "--noise-prob=0.02",
       "--noise-2q-factor=1.5", "--noise-mode=density", "--columns=4"});
  ASSERT_TRUE(Noisy);
  EXPECT_EQ(Noisy->Noise.Kind, NoiseChannelKind::Depolarizing);
  EXPECT_DOUBLE_EQ(Noisy->Noise.Prob, 0.02);
  EXPECT_DOUBLE_EQ(Noisy->Noise.TwoQubitFactor, 1.5);
  EXPECT_EQ(Noisy->Noise.Mode, NoiseMode::Density);
  EXPECT_TRUE(Noisy->validate());
  EXPECT_TRUE(Noisy->Noise.enabled());

  // The default spec is inert.
  std::optional<TaskSpec> Default = parseArgs({"h.txt"});
  ASSERT_TRUE(Default);
  EXPECT_FALSE(Default->Noise.enabled());

  std::string Error;
  EXPECT_FALSE(parseArgs({"h.txt", "--noise=bitflip"}, &Error));
  EXPECT_NE(Error.find("bitflip"), std::string::npos);
  // Noise knobs without a channel are a spec error, not a silent no-op.
  EXPECT_FALSE(parseArgs({"h.txt", "--noise-prob=0.1"}, &Error));
  EXPECT_NE(Error.find("--noise=MODEL"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", "--noise-mode=density"}, &Error));
  // Probabilities outside [0, 1] (including NaN) and non-positive or
  // non-finite factors are rejected at parse time.
  const char *Phase = "--noise=phase-flip";
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-prob=1.5"}, &Error));
  EXPECT_NE(Error.find("[0, 1]"), std::string::npos);
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-prob=-0.1"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-prob=nan"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-2q-factor=0"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-2q-factor=-2"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-2q-factor=nan"}, &Error));
  EXPECT_FALSE(parseArgs({"h.txt", Phase, "--noise-mode=exact"}, &Error));

  // validate(): enabled noise demands fidelity columns, and the density
  // oracle demands the fp64 tier.
  std::optional<TaskSpec> NoColumns =
      parseArgs({"h.txt", Phase, "--noise-prob=0.1"});
  ASSERT_TRUE(NoColumns);
  EXPECT_FALSE(NoColumns->validate(&Error));
  EXPECT_NE(Error.find("--columns"), std::string::npos);
  std::optional<TaskSpec> Fp32Density =
      parseArgs({"h.txt", Phase, "--noise-prob=0.1", "--columns=2",
                 "--noise-mode=density", "--precision=fp32"});
  ASSERT_TRUE(Fp32Density);
  EXPECT_FALSE(Fp32Density->validate(&Error));
  EXPECT_NE(Error.find("fp64"), std::string::npos);
}

TEST(TaskSpecParseTest, NoiseOffSpecsKeepContentKeys) {
  // The noise fields are mixed into contentKey only when the channel is
  // enabled: every pre-existing noiseless spec — and every disabled
  // spelling of one — must keep its exact key so on-disk manifests and
  // cache entries stay valid.
  TaskSpec Base = testSpec(testHamiltonian());
  const uint64_t DefaultKey = Base.contentKey();
  Base.Noise.Prob = 0.5; // ignored without a channel
  EXPECT_EQ(Base.contentKey(), DefaultKey);
  Base.Noise.Kind = NoiseChannelKind::Depolarizing;
  Base.Noise.Prob = 0.0; // a zero-rate channel is equally inert
  EXPECT_EQ(Base.contentKey(), DefaultKey);

  // Enabled noise forces a distinct key, and every knob participates.
  Base.Noise.Prob = 0.1;
  const uint64_t NoisyKey = Base.contentKey();
  EXPECT_NE(NoisyKey, DefaultKey);
  Base.Noise.Mode = NoiseMode::Density;
  EXPECT_NE(Base.contentKey(), NoisyKey);
  Base.Noise.Mode = NoiseMode::Stochastic;
  Base.Noise.TwoQubitFactor = 2.0;
  EXPECT_NE(Base.contentKey(), NoisyKey);
  Base.Noise.TwoQubitFactor = 1.0;
  Base.Noise.Kind = NoiseChannelKind::PhaseFlip;
  EXPECT_NE(Base.contentKey(), NoisyKey);
  Base.Noise.Kind = NoiseChannelKind::Depolarizing;
  EXPECT_EQ(Base.contentKey(), NoisyKey);
}

TEST(ServiceFidelityTest, Fp32PrecisionTracksFp64) {
  SimulationService Service;
  TaskSpec Spec = testSpec(testHamiltonian());
  Spec.Shots = 4;
  Spec.Evaluate.FidelityColumns = 6;

  std::optional<TaskResult> F64 = Service.run(Spec);
  Spec.Precision = EvalPrecision::FP32;
  std::optional<TaskResult> F32 = Service.run(Spec);
  ASSERT_TRUE(F64 && F32);

  // Identical schedules (the compile path is precision-independent) ...
  EXPECT_EQ(F64->Batch.batchHash(), F32->Batch.batchHash());
  // ... evaluated on the float panel: within float tolerance of FP64 but
  // not the identical doubles — the opt-in tier really ran.
  ASSERT_EQ(F32->ShotFidelities.size(), Spec.Shots);
  bool AnyDiffers = false;
  for (size_t Shot = 0; Shot < Spec.Shots; ++Shot) {
    EXPECT_NEAR(F64->ShotFidelities[Shot], F32->ShotFidelities[Shot], 1e-3)
        << "shot " << Shot;
    AnyDiffers |= serial::doubleBits(F64->ShotFidelities[Shot]) !=
                  serial::doubleBits(F32->ShotFidelities[Shot]);
  }
  EXPECT_TRUE(AnyDiffers) << "fp32 run bit-matched fp64 on every shot — "
                             "did the precision knob reach the evaluator?";
  EXPECT_NEAR(F64->Fidelity.Mean, F32->Fidelity.Mean, 1e-3);
}
