//===- tests/LinalgTest.cpp - linear algebra tests -----------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eigen.h"
#include "linalg/Expm.h"
#include "linalg/LU.h"
#include "linalg/Matrix.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

namespace {

Matrix randomMatrix(size_t N, RNG &Rng) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      M.at(I, J) = Complex(Rng.gaussian(), Rng.gaussian());
  return M;
}

} // namespace

TEST(MatrixTest, IdentityAndTrace) {
  Matrix I = Matrix::identity(4);
  EXPECT_EQ(I.trace(), Complex(4.0, 0.0));
  EXPECT_DOUBLE_EQ(I.frobeniusNorm(), 2.0);
}

TEST(MatrixTest, ProductAgainstHandComputation) {
  Matrix A = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix B = Matrix::fromRows({{5.0, 6.0}, {7.0, 8.0}});
  Matrix C = A * B;
  EXPECT_EQ(C.at(0, 0), Complex(19.0, 0.0));
  EXPECT_EQ(C.at(0, 1), Complex(22.0, 0.0));
  EXPECT_EQ(C.at(1, 0), Complex(43.0, 0.0));
  EXPECT_EQ(C.at(1, 1), Complex(50.0, 0.0));
}

TEST(MatrixTest, AdjointConjugatesAndTransposes) {
  Matrix A = Matrix::fromRows({{Complex(1, 2), Complex(3, -1)},
                               {Complex(0, 1), Complex(2, 0)}});
  Matrix Ad = A.adjoint();
  EXPECT_EQ(Ad.at(0, 0), Complex(1, -2));
  EXPECT_EQ(Ad.at(1, 0), Complex(3, 1));
  EXPECT_EQ(Ad.at(0, 1), Complex(0, -1));
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix A = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
  CVector V = {Complex(1, 0), Complex(1, 0)};
  CVector R = A * V;
  EXPECT_EQ(R[0], Complex(3, 0));
  EXPECT_EQ(R[1], Complex(7, 0));
}

TEST(MatrixTest, KroneckerProduct) {
  Matrix X = Matrix::fromRows({{0.0, 1.0}, {1.0, 0.0}});
  Matrix Z = Matrix::fromRows({{1.0, 0.0}, {0.0, -1.0}});
  Matrix K = Matrix::kron(Z, X); // Z on qubit 1, X on qubit 0
  EXPECT_EQ(K.rows(), 4u);
  EXPECT_EQ(K.at(0, 1), Complex(1, 0));
  EXPECT_EQ(K.at(1, 0), Complex(1, 0));
  EXPECT_EQ(K.at(2, 3), Complex(-1, 0));
  EXPECT_EQ(K.at(3, 2), Complex(-1, 0));
}

TEST(MatrixTest, UnitaryCheck) {
  const double S = 1.0 / std::sqrt(2.0);
  Matrix H = Matrix::fromRows({{S, S}, {S, -S}});
  EXPECT_TRUE(H.isUnitary());
  Matrix NotU = Matrix::fromRows({{1.0, 1.0}, {0.0, 1.0}});
  EXPECT_FALSE(NotU.isUnitary());
}

TEST(MatrixTest, OneNormIsMaxColumnSum) {
  Matrix A = Matrix::fromRows({{1.0, -4.0}, {2.0, 3.0}});
  EXPECT_DOUBLE_EQ(A.oneNorm(), 7.0);
}

TEST(LUTest, SolvesKnownSystem) {
  Matrix A = Matrix::fromRows({{2.0, 1.0}, {1.0, 3.0}});
  CVector B = {Complex(5, 0), Complex(10, 0)};
  LU Fact(A);
  ASSERT_FALSE(Fact.isSingular());
  CVector X = Fact.solve(B);
  EXPECT_NEAR(std::abs(X[0] - Complex(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(X[1] - Complex(3, 0)), 0.0, 1e-12);
}

TEST(LUTest, DeterminantAndSingularity) {
  Matrix A = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NEAR(std::abs(LU(A).determinant() - Complex(-2, 0)), 0.0, 1e-12);
  Matrix S = Matrix::fromRows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_TRUE(LU(S).isSingular());
}

TEST(LUTest, RandomSystemsRoundTrip) {
  RNG Rng(11);
  for (int Trial = 0; Trial < 20; ++Trial) {
    size_t N = 2 + Rng.uniformInt(6);
    Matrix A = randomMatrix(N, Rng);
    CVector X(N);
    for (auto &V : X)
      V = Complex(Rng.gaussian(), Rng.gaussian());
    CVector B = A * X;
    LU Fact(A);
    ASSERT_FALSE(Fact.isSingular());
    CVector Got = Fact.solve(B);
    for (size_t I = 0; I < N; ++I)
      EXPECT_NEAR(std::abs(Got[I] - X[I]), 0.0, 1e-9);
  }
}

TEST(ExpmTest, ZeroGivesIdentity) {
  Matrix Z(3, 3);
  EXPECT_NEAR(expm(Z).maxAbsDiff(Matrix::identity(3)), 0.0, 1e-14);
}

TEST(ExpmTest, DiagonalMatrix) {
  Matrix D(2, 2);
  D.at(0, 0) = Complex(1.0, 0.0);
  D.at(1, 1) = Complex(0.0, M_PI);
  Matrix E = expm(D);
  EXPECT_NEAR(std::abs(E.at(0, 0) - Complex(std::exp(1.0), 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(E.at(1, 1) - Complex(-1.0, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(E.at(0, 1)), 0.0, 1e-14);
}

TEST(ExpmTest, PauliXRotation) {
  // expm(i theta X) = cos(theta) I + i sin(theta) X.
  Matrix X = Matrix::fromRows({{0.0, 1.0}, {1.0, 0.0}});
  double Theta = 0.7;
  Matrix E = expm(X * Complex(0.0, Theta));
  EXPECT_NEAR(std::abs(E.at(0, 0) - Complex(std::cos(Theta), 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(E.at(0, 1) - Complex(0, std::sin(Theta))), 0.0, 1e-12);
  EXPECT_TRUE(E.isUnitary(1e-10));
}

TEST(ExpmTest, LargeNormUsesScaling) {
  // A matrix with norm >> theta13 exercises the squaring phase.
  Matrix X = Matrix::fromRows({{0.0, 1.0}, {1.0, 0.0}});
  double Theta = 50.3;
  Matrix E = expm(X * Complex(0.0, Theta));
  EXPECT_NEAR(std::abs(E.at(0, 0) - Complex(std::cos(Theta), 0)), 0.0, 1e-9);
  EXPECT_TRUE(E.isUnitary(1e-8));
}

TEST(ExpmTest, MatchesTaylorOnRandomSmallMatrix) {
  RNG Rng(12);
  Matrix A = randomMatrix(4, Rng);
  A *= Complex(0.2, 0.0); // keep the series quickly convergent
  Matrix E = expm(A);
  // Direct Taylor sum.
  Matrix Sum = Matrix::identity(4);
  Matrix Term = Matrix::identity(4);
  for (int K = 1; K <= 30; ++K) {
    Term = Term * A;
    Term *= Complex(1.0 / K, 0.0);
    Sum += Term;
  }
  EXPECT_NEAR(E.maxAbsDiff(Sum), 0.0, 1e-10);
}

TEST(EigenTest, DiagonalMatrix) {
  std::vector<double> A = {3.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 2.0};
  auto Eigs = realEigenvalues(A, 3);
  EXPECT_NEAR(Eigs[0].real(), 3.0, 1e-10);
  EXPECT_NEAR(Eigs[1].real(), 2.0, 1e-10);
  EXPECT_NEAR(Eigs[2].real(), -1.0, 1e-10);
}

TEST(EigenTest, RotationBlockGivesComplexPair) {
  // [[cos, -sin], [sin, cos]] has eigenvalues e^{+-i theta}.
  double Theta = 0.6;
  std::vector<double> A = {std::cos(Theta), -std::sin(Theta),
                           std::sin(Theta), std::cos(Theta)};
  auto Eigs = realEigenvalues(A, 2);
  EXPECT_NEAR(std::abs(Eigs[0]), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(Eigs[0].imag()), std::sin(Theta), 1e-10);
  EXPECT_NEAR(Eigs[0].real(), std::cos(Theta), 1e-10);
}

TEST(EigenTest, PermutationCirculantHasRootsOfUnity) {
  // The cyclic shift on 5 elements has the 5th roots of unity as spectrum.
  const size_t N = 5;
  std::vector<double> A(N * N, 0.0);
  for (size_t I = 0; I < N; ++I)
    A[I * N + (I + 1) % N] = 1.0;
  auto Eigs = realEigenvalues(A, N);
  ASSERT_EQ(Eigs.size(), N);
  for (const auto &E : Eigs)
    EXPECT_NEAR(std::abs(E), 1.0, 1e-9);
  // One eigenvalue is exactly 1.
  bool HasOne = false;
  for (const auto &E : Eigs)
    HasOne |= std::abs(E - Complex(1, 0)) < 1e-9;
  EXPECT_TRUE(HasOne);
}

TEST(EigenTest, CompanionMatrixRecoversPolynomialRoots) {
  // Companion matrix of p(x) = (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  std::vector<double> A = {6.0, -11.0, 6.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0};
  auto Eigs = realEigenvalues(A, 3);
  EXPECT_NEAR(Eigs[0].real(), 3.0, 1e-8);
  EXPECT_NEAR(Eigs[1].real(), 2.0, 1e-8);
  EXPECT_NEAR(Eigs[2].real(), 1.0, 1e-8);
}

TEST(EigenTest, RankOneStochasticMatrix) {
  // Every row equal to pi: eigenvalues are {1, 0, 0, 0}.
  std::vector<double> Pi = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> A(16);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J)
      A[I * 4 + J] = Pi[J];
  auto Mags = eigenvalueMagnitudes(A, 4);
  EXPECT_NEAR(Mags[0], 1.0, 1e-10);
  for (size_t K = 1; K < 4; ++K)
    EXPECT_NEAR(Mags[K], 0.0, 1e-10);
}

TEST(EigenTest, TraceAndSumAgreeOnRandomMatrices) {
  RNG Rng(13);
  for (int Trial = 0; Trial < 10; ++Trial) {
    size_t N = 3 + Rng.uniformInt(8);
    std::vector<double> A(N * N);
    double Trace = 0.0;
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J) {
        A[I * N + J] = Rng.gaussian();
        if (I == J)
          Trace += A[I * N + J];
      }
    auto Eigs = realEigenvalues(A, N);
    Complex Sum = 0.0;
    for (const auto &E : Eigs)
      Sum += E;
    EXPECT_NEAR(Sum.real(), Trace, 1e-7);
    EXPECT_NEAR(Sum.imag(), 0.0, 1e-7);
  }
}

TEST(EigenTest, StochasticMatrixLeadingEigenvalueIsOne) {
  RNG Rng(14);
  for (int Trial = 0; Trial < 10; ++Trial) {
    size_t N = 3 + Rng.uniformInt(10);
    std::vector<double> A(N * N);
    for (size_t I = 0; I < N; ++I) {
      double Sum = 0;
      for (size_t J = 0; J < N; ++J) {
        A[I * N + J] = Rng.uniform() + 1e-3;
        Sum += A[I * N + J];
      }
      for (size_t J = 0; J < N; ++J)
        A[I * N + J] /= Sum;
    }
    auto Mags = eigenvalueMagnitudes(A, N);
    EXPECT_NEAR(Mags[0], 1.0, 1e-8);
    for (double M : Mags)
      EXPECT_LE(M, 1.0 + 1e-8);
  }
}

TEST(EigenTest, UpperTriangularEigenvaluesAreDiagonal) {
  std::vector<double> A = {2.0, 5.0, -3.0, 0.0, -1.5, 7.0, 0.0, 0.0, 4.0};
  auto Eigs = realEigenvalues(A, 3);
  EXPECT_NEAR(Eigs[0].real(), 4.0, 1e-9);
  EXPECT_NEAR(Eigs[1].real(), 2.0, 1e-9);
  EXPECT_NEAR(Eigs[2].real(), -1.5, 1e-9);
}

TEST(EigenTest, DefectiveJordanBlock) {
  // [[3, 1], [0, 3]] has a double eigenvalue 3 with a single eigenvector.
  std::vector<double> A = {3.0, 1.0, 0.0, 3.0};
  auto Eigs = realEigenvalues(A, 2);
  EXPECT_NEAR(Eigs[0].real(), 3.0, 1e-7);
  EXPECT_NEAR(Eigs[1].real(), 3.0, 1e-7);
  EXPECT_NEAR(Eigs[0].imag(), 0.0, 1e-7);
}

TEST(EigenTest, SingleElementMatrix) {
  std::vector<double> A = {-2.5};
  auto Eigs = realEigenvalues(A, 1);
  ASSERT_EQ(Eigs.size(), 1u);
  EXPECT_DOUBLE_EQ(Eigs[0].real(), -2.5);
}

TEST(VectorTest, InnerProductAndNorm) {
  CVector A = {Complex(1, 1), Complex(0, 2)};
  CVector B = {Complex(2, 0), Complex(1, 0)};
  Complex IP = innerProduct(A, B);
  // <A,B> = conj(1+i)*2 + conj(2i)*1 = (2-2i) + (-2i) = 2 - 4i.
  EXPECT_NEAR(std::abs(IP - Complex(2, -4)), 0.0, 1e-14);
  EXPECT_NEAR(vectorNorm(A), std::sqrt(6.0), 1e-14);
}
