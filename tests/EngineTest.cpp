//===- tests/EngineTest.cpp - CompilerEngine / batch determinism tests --------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The determinism contracts of the batch engine:
//   * compileBatch is bit-identical for every worker count,
//   * compileOne(Seed) equals shot 0 of a batch with the same seed,
//   * deterministic strategies replicate one shot across the batch,
// plus the RNG substream derivation, the ThreadPool, the CDF quantile
// clamp, and a chi-square check that the alias and CDF samplers agree in
// distribution.
//
//===----------------------------------------------------------------------===//

#include "core/CompilerEngine.h"
#include "core/TransitionBuilders.h"
#include "sim/Fidelity.h"
#include "support/Serial.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <iterator>
#include <numeric>

using namespace marqsim;

namespace {

/// A small strongly-interacting Hamiltonian for engine tests.
Hamiltonian testHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"},
                             {0.2, "XYYZ"}})
      .splitLargeTerms();
}

std::shared_ptr<const HTTGraph> testGraph(double WQd = 0.4,
                                          double WGc = 0.6) {
  Hamiltonian H = testHamiltonian();
  TransitionMatrix P = makeConfigMatrix(H, WQd, WGc, 0.0);
  return std::make_shared<const HTTGraph>(std::move(H), std::move(P));
}

/// chi^2 critical value via the Wilson-Hilferty approximation at z sigma.
double chiSquareCritical(size_t Df, double Z) {
  double D = static_cast<double>(Df);
  double Term = 1.0 - 2.0 / (9.0 * D) + Z * std::sqrt(2.0 / (9.0 * D));
  return D * Term * Term * Term;
}

} // namespace

//===----------------------------------------------------------------------===//
// RNG::forShot
//===----------------------------------------------------------------------===//

TEST(RNGForShotTest, SameSeedAndShotGiveIdenticalStreams) {
  RNG A = RNG::forShot(123, 7);
  RNG B = RNG::forShot(123, 7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGForShotTest, DistinctShotsAndSeedsGiveDistinctStreams) {
  RNG A = RNG::forShot(123, 0);
  RNG B = RNG::forShot(123, 1);
  RNG C = RNG::forShot(124, 0);
  // First draws differing is the cheap necessary condition; collisions of
  // all three would indicate broken derivation.
  uint64_t DA = A.next(), DB = B.next(), DC = C.next();
  EXPECT_NE(DA, DB);
  EXPECT_NE(DA, DC);
  EXPECT_NE(DB, DC);
}

TEST(RNGForShotTest, IndependentOfGeneratorState) {
  // forShot is a pure function of (Seed, Shot): interleaving other
  // derivations or draws must not change a substream.
  RNG Reference = RNG::forShot(9, 4);
  RNG Noise(1);
  Noise.next();
  (void)RNG::forShot(1, 1);
  RNG Again = RNG::forShot(9, 4);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Reference.next(), Again.next());
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  const size_t N = 1000;
  std::vector<std::atomic<int>> Visits(N);
  for (auto &V : Visits)
    V.store(0);
  parallelFor(N, 8, [&](size_t I) { Visits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Visits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, MoreJobsThanWorkAndInlinePaths) {
  for (unsigned Jobs : {0u, 1u, 3u, 64u}) {
    std::atomic<size_t> Sum{0};
    parallelFor(5, Jobs, [&](size_t I) { Sum.fetch_add(I + 1); });
    EXPECT_EQ(Sum.load(), 15u) << "jobs=" << Jobs;
  }
  // Empty ranges are a no-op.
  parallelFor(0, 4, [&](size_t) { FAIL() << "body called for empty range"; });
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  EXPECT_THROW(parallelFor(100, 4,
                           [&](size_t I) {
                             if (I == 42)
                               throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForCompletesEveryIndex) {
  // Per-shot evaluation nests parallelFor (EvalJobs) inside the batch's
  // parallelFor (Jobs). The caller-participates design must drain every
  // inner index even when all shared-pool workers are busy with outer
  // work — an implementation that parks inner stubs behind blocked outer
  // stubs would deadlock or drop indices here.
  const size_t Outer = 16, Inner = 8;
  std::vector<std::atomic<int>> Visits(Outer * Inner);
  for (auto &V : Visits)
    V.store(0);
  parallelFor(Outer, 4, [&](size_t O) {
    parallelFor(Inner, 4,
                [&](size_t I) { Visits[O * Inner + I].fetch_add(1); });
  });
  for (size_t K = 0; K < Outer * Inner; ++K)
    EXPECT_EQ(Visits[K].load(), 1) << "slot " << K;
}

TEST(ThreadPoolTest, SharedPoolPersistsAcrossCalls) {
  // Repeated fan-outs must reuse the process-wide pool, not respawn
  // threads: the pool only ever grows to the largest helper demand.
  parallelFor(8, 3, [](size_t) {});
  const unsigned AfterFirst = ThreadPool::shared().numWorkers();
  EXPECT_GE(AfterFirst, 2u); // Jobs - 1 helpers
  for (int Round = 0; Round < 50; ++Round)
    parallelFor(8, 3, [](size_t) {});
  EXPECT_EQ(ThreadPool::shared().numWorkers(), AfterFirst);
  parallelFor(8, 5, [](size_t) {});
  EXPECT_GE(ThreadPool::shared().numWorkers(), 4u);
}

TEST(ThreadPoolTest, SubmitAndWaitDrainsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Done{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] { Done.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Done.load(), 64);
}

//===----------------------------------------------------------------------===//
// CDFSampler quantile clamp
//===----------------------------------------------------------------------===//

TEST(CDFSamplerClampTest, OverflowingQuantileStaysInSupport) {
  // Draws that land at or past the final cumulative sum (possible when
  // rounding makes Cumulative.back() < the true total) must clamp to the
  // last *positive-weight* index, not a trailing zero-weight one.
  CDFSampler TrailingZeros(std::vector<double>{1.0, 0.0, 0.0});
  EXPECT_EQ(TrailingZeros.indexForQuantile(1.0), 0u);
  EXPECT_EQ(TrailingZeros.indexForQuantile(2.0), 0u);

  CDFSampler MiddleMass(std::vector<double>{0.0, 2.0, 0.0});
  EXPECT_EQ(MiddleMass.indexForQuantile(1.0), 1u);
  EXPECT_EQ(MiddleMass.indexForQuantile(0.0), 1u);

  CDFSampler Dense(std::vector<double>{0.25, 0.5, 0.25});
  EXPECT_EQ(Dense.indexForQuantile(1.0), 2u);
}

TEST(CDFSamplerClampTest, RandomDrawsNeverHitZeroWeightEntries) {
  RNG Gen(77);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<double> W(17);
    for (double &X : W)
      X = Gen.bernoulli(0.3) ? 0.0 : Gen.uniform();
    W[16] = 0.0; // force a zero-weight tail
    if (std::accumulate(W.begin(), W.end(), 0.0) <= 0.0)
      W[0] = 1.0;
    CDFSampler S(W);
    RNG Rng(100 + Trial);
    for (int I = 0; I < 20000; ++I) {
      size_t K = S.sample(Rng);
      ASSERT_LT(K, W.size());
      ASSERT_GT(W[K], 0.0) << "draw hit zero-weight index " << K;
    }
  }
}

//===----------------------------------------------------------------------===//
// Alias vs CDF agreement (chi-square)
//===----------------------------------------------------------------------===//

TEST(SamplerAgreementTest, ChiSquareAgainstExpectedOnRandomWeights) {
  RNG Gen(2025);
  const int Draws = 60000;
  for (size_t Size : {4u, 9u, 16u, 33u}) {
    std::vector<double> W(Size);
    double Total = 0.0;
    for (double &X : W)
      Total += (X = 0.05 + Gen.uniform()); // bounded away from 0 so every
                                           // expected count is large
    AliasSampler Alias(W);
    CDFSampler CDF(W);
    RNG RA(Size * 31 + 1), RC(Size * 31 + 2);
    std::vector<int> CA(Size, 0), CC(Size, 0);
    for (int I = 0; I < Draws; ++I) {
      ++CA[Alias.sample(RA)];
      ++CC[CDF.sample(RC)];
    }
    // Goodness of fit of both samplers against the target distribution.
    double StatA = 0.0, StatC = 0.0;
    for (size_t K = 0; K < Size; ++K) {
      double Expected = Draws * W[K] / Total;
      StatA += (CA[K] - Expected) * (CA[K] - Expected) / Expected;
      StatC += (CC[K] - Expected) * (CC[K] - Expected) / Expected;
    }
    double Critical = chiSquareCritical(Size - 1, 3.29); // ~p = 0.9995
    EXPECT_LT(StatA, Critical) << "alias sampler off target, size " << Size;
    EXPECT_LT(StatC, Critical) << "CDF sampler off target, size " << Size;

    // Two-sample chi-square: the samplers agree with each other.
    double StatAC = 0.0;
    for (size_t K = 0; K < Size; ++K) {
      double Sum = CA[K] + CC[K];
      if (Sum > 0)
        StatAC += (CA[K] - CC[K]) * (CA[K] - CC[K]) / Sum;
    }
    EXPECT_LT(StatAC, Critical) << "samplers disagree, size " << Size;
  }
}

//===----------------------------------------------------------------------===//
// Fixed-seed draw regression
//===----------------------------------------------------------------------===//

// The chi-square test above only checks *distributions*, so a sampler
// change that shifts which draws land where (a reordered alias table, an
// extra RNG consumption, a different tie-break) sails through it while
// silently invalidating every recorded batch hash. These golden sequences
// pin the exact draws: a legitimate sampler change must update them
// consciously, alongside every other seeded artifact it invalidates.

TEST(SamplerRegressionTest, AliasDrawSequenceIsFrozen) {
  const std::vector<double> W = {0.15, 0.3, 0.05, 0.25, 0.25};
  AliasSampler Alias(W);
  RNG Rng(12345);
  const size_t Golden[] = {3, 1, 4, 4, 3, 3, 1, 3, 3, 4, 1, 4, 0, 4, 1, 3};
  for (size_t I = 0; I < std::size(Golden); ++I)
    EXPECT_EQ(Alias.sample(Rng), Golden[I]) << "draw " << I;
}

TEST(SamplerRegressionTest, CDFDrawSequenceIsFrozen) {
  const std::vector<double> W = {0.15, 0.3, 0.05, 0.25, 0.25};
  CDFSampler CDF(W);
  RNG Rng(12345);
  const size_t Golden[] = {3, 0, 4, 0, 3, 0, 1, 1, 1, 4, 4, 3, 4, 4, 0, 4};
  for (size_t I = 0; I < std::size(Golden); ++I)
    EXPECT_EQ(CDF.sample(Rng), Golden[I]) << "draw " << I;
}

TEST(SamplerRegressionTest, ForShotSubstreamIsFrozen) {
  RNG Rng = RNG::forShot(7, 3);
  const uint64_t Golden[] = {14711317644352780248ULL, 3901681286276763966ULL,
                             9208789493979141732ULL, 8053204431652315326ULL};
  for (size_t I = 0; I < std::size(Golden); ++I)
    EXPECT_EQ(Rng.next(), Golden[I]) << "draw " << I;
}

TEST(SamplerRegressionTest, BatchHashesAreFrozen) {
  // End-to-end pin over the whole pipeline: graph construction, alias (and
  // CDF) table layout, the Markov walk, and the sequence hashing. Recorded
  // shard manifests and cached sweeps all assume these values.
  auto Graph = testGraph();
  CompilerEngine Engine;
  BatchRequest Req;
  Req.Strategy = std::make_shared<const SamplingStrategy>(Graph, 0.5, 0.05);
  Req.NumShots = 4;
  Req.Seed = 2025;
  BatchResult Batch = Engine.compileBatch(Req);
  EXPECT_EQ(Batch.batchHash(), 9422497201697092697ULL);
  const uint64_t GoldenShots[] = {
      13436589725562461351ULL, 4164583861295183526ULL,
      14740134279793469888ULL, 17535853739059979203ULL};
  ASSERT_EQ(Batch.Shots.size(), std::size(GoldenShots));
  for (size_t I = 0; I < std::size(GoldenShots); ++I)
    EXPECT_EQ(Batch.Shots[I].SequenceHash, GoldenShots[I]) << "shot " << I;

  Req.Strategy =
      std::make_shared<const SamplingStrategy>(Graph, 0.5, 0.05,
                                               /*UseCDF=*/true);
  EXPECT_EQ(Engine.compileBatch(Req).batchHash(), 4882182761049389600ULL);
}

TEST(SamplerRegressionTest, FidelityHexesAreFrozen) {
  // End-to-end pin over the evaluation substrate: the Markov walk, the
  // fused Pauli kernels (butterfly + diagonal fast path), the StatePanel
  // sweep, and the fixed-order overlap reduction. These hexes were
  // recorded against the pre-fusion two-pass implementation; a kernel
  // change that perturbs one bit of one amplitude lands here. Unlike the
  // integer-sequence goldens above they pass through libm cos/sin/exp, so
  // they assume the CI platform's libm (x86-64 glibc); a 1-ulp libm
  // difference elsewhere fails this test without a real kernel
  // regression — the portable fusion contract lives in SimTest's
  // reference-kernel comparisons and bench_eval_kernels.
  auto Graph = testGraph();
  CompilerEngine Engine;
  BatchRequest Req;
  Req.Strategy = std::make_shared<const SamplingStrategy>(Graph, 0.5, 0.05);
  Req.NumShots = 4;
  Req.Seed = 2025;
  Req.KeepResults = true;
  BatchResult Batch = Engine.compileBatch(Req);

  Hamiltonian H = testHamiltonian();
  FidelityEvaluator Eval(H, 0.5, 8, 7);
  const char *Golden[] = {"3fefd1c62990a8de", "3fefbee47aa924b1",
                          "3fef3fd24f07a2eb", "3fefe98d81be7c8f"};
  ASSERT_EQ(Batch.Results.size(), std::size(Golden));
  for (size_t Shot = 0; Shot < std::size(Golden); ++Shot)
    EXPECT_EQ(serial::hex16(serial::doubleBits(
                  Eval.fidelity(Batch.Results[Shot].Schedule))),
              Golden[Shot])
        << "shot " << Shot;

  // The gate-level circuit path shares the panel substrate.
  EXPECT_EQ(serial::hex16(serial::doubleBits(
                Eval.fidelityOfCircuit(Batch.Results[0].Circ))),
            "3fefd1c62990a84a");

  // Within-shot fan-out must not move a bit: a 16-column (two-block)
  // evaluator under EvalJobs 1 and 4 yields identical hexes per shot.
  FidelityEvaluator Exact(H, 0.5, 16, 7);
  ASSERT_TRUE(Exact.isExact());
  for (size_t Shot = 0; Shot < Batch.Results.size(); ++Shot) {
    const auto &Schedule = Batch.Results[Shot].Schedule;
    EXPECT_EQ(serial::doubleBits(Exact.fidelity(Schedule, 1)),
              serial::doubleBits(Exact.fidelity(Schedule, 4)))
        << "shot " << Shot;
  }
}

//===----------------------------------------------------------------------===//
// CompilerEngine batches
//===----------------------------------------------------------------------===//

TEST(CompilerEngineTest, BatchBitIdenticalAcrossJobCounts) {
  auto Graph = testGraph();
  auto Strategy =
      std::make_shared<const SamplingStrategy>(Graph, 0.5, 0.05);
  CompilerEngine Engine;

  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 12;
  Req.Seed = 31337;
  Req.KeepResults = true;

  Req.Jobs = 1;
  BatchResult Serial = Engine.compileBatch(Req);
  Req.Jobs = 8;
  BatchResult Parallel = Engine.compileBatch(Req);

  ASSERT_EQ(Serial.NumShots, Parallel.NumShots);
  EXPECT_EQ(Serial.batchHash(), Parallel.batchHash());
  for (size_t Shot = 0; Shot < Serial.NumShots; ++Shot) {
    EXPECT_EQ(Serial.Results[Shot].Sequence, Parallel.Results[Shot].Sequence)
        << "shot " << Shot;
    EXPECT_EQ(Serial.Shots[Shot].Counts.CNOTs,
              Parallel.Shots[Shot].Counts.CNOTs);
    EXPECT_EQ(Serial.Shots[Shot].Counts.SingleQubit,
              Parallel.Shots[Shot].Counts.SingleQubit);
    EXPECT_EQ(Serial.Shots[Shot].SequenceHash,
              Parallel.Shots[Shot].SequenceHash);
  }
  EXPECT_DOUBLE_EQ(Serial.CNOTs.Mean, Parallel.CNOTs.Mean);
  EXPECT_DOUBLE_EQ(Serial.CNOTs.Std, Parallel.CNOTs.Std);
}

TEST(CompilerEngineTest, CompileOneMatchesBatchShotZero) {
  auto Strategy =
      std::make_shared<const SamplingStrategy>(testGraph(), 0.4, 0.1);
  CompilerEngine Engine;

  CompilationResult One = Engine.compileOne(*Strategy, 99);

  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 3;
  Req.Seed = 99;
  Req.KeepResults = true;
  BatchResult Batch = Engine.compileBatch(Req);

  EXPECT_EQ(One.Sequence, Batch.Results[0].Sequence);
  EXPECT_EQ(One.Counts.CNOTs, Batch.Results[0].Counts.CNOTs);
  // Later shots use different substreams.
  EXPECT_NE(Batch.Shots[0].SequenceHash, Batch.Shots[1].SequenceHash);
}

TEST(CompilerEngineTest, DistinctSeedsChangeTheBatch) {
  auto Strategy =
      std::make_shared<const SamplingStrategy>(testGraph(), 0.4, 0.1);
  CompilerEngine Engine;
  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 4;
  Req.Seed = 1;
  BatchResult A = Engine.compileBatch(Req);
  Req.Seed = 2;
  BatchResult B = Engine.compileBatch(Req);
  EXPECT_NE(A.batchHash(), B.batchHash());
}

TEST(CompilerEngineTest, DeterministicStrategyReplicatesOneShot) {
  Hamiltonian H = testHamiltonian();
  auto Strategy = std::make_shared<const TrotterStrategy>(
      H, 0.7, 4, TermOrderKind::Lexicographic, 2);
  ASSERT_TRUE(Strategy->isDeterministic());

  CompilerEngine Engine;
  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 6;
  Req.Jobs = 4;
  Req.Seed = 5;
  Req.KeepResults = true;
  BatchResult Batch = Engine.compileBatch(Req);

  for (size_t Shot = 1; Shot < Batch.NumShots; ++Shot) {
    EXPECT_EQ(Batch.Shots[Shot].SequenceHash, Batch.Shots[0].SequenceHash);
    EXPECT_EQ(Batch.Results[Shot].Sequence, Batch.Results[0].Sequence);
  }
  EXPECT_DOUBLE_EQ(Batch.CNOTs.Std, 0.0);
  EXPECT_DOUBLE_EQ(Batch.Totals.Std, 0.0);
  // The replicated schedule matches the legacy entry point bit for bit.
  CompilationResult Legacy =
      compileTrotter2(H, 0.7, 4, TermOrderKind::Lexicographic);
  EXPECT_EQ(Legacy.Sequence, Batch.Results[0].Sequence);
  EXPECT_EQ(Legacy.Counts.CNOTs, Batch.Results[0].Counts.CNOTs);
}

TEST(CompilerEngineTest, PerShotHookSeesEveryShotOnce) {
  auto Strategy =
      std::make_shared<const SamplingStrategy>(testGraph(), 0.5, 0.05);
  CompilerEngine Engine;

  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 10;
  Req.Jobs = 4;
  Req.Seed = 77;
  std::vector<size_t> SeenCNOTs(Req.NumShots, 0);
  std::atomic<size_t> Calls{0};
  Req.PerShot = [&](size_t Shot, const CompilationResult &R) {
    SeenCNOTs[Shot] = R.Counts.CNOTs;
    Calls.fetch_add(1);
  };
  BatchResult Batch = Engine.compileBatch(Req);

  EXPECT_EQ(Calls.load(), Req.NumShots);
  for (size_t Shot = 0; Shot < Req.NumShots; ++Shot)
    EXPECT_EQ(SeenCNOTs[Shot], Batch.Shots[Shot].Counts.CNOTs)
        << "shot " << Shot;
  // Evaluation accounting belongs to the hook owner (SimulationService
  // times its fidelity calls); the engine never guesses at what a generic
  // hook spends its time on.
  EXPECT_EQ(Batch.EvalSeconds, 0.0);
}

TEST(CompilerEngineTest, PerShotHookFiresPerReplicatedShot) {
  auto Strategy = std::make_shared<const TrotterStrategy>(
      testHamiltonian(), 0.7, 3, TermOrderKind::Lexicographic, 1);
  ASSERT_TRUE(Strategy->isDeterministic());

  CompilerEngine Engine;
  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 5;
  Req.Seed = 5;
  size_t Calls = 0;
  size_t FirstCNOTs = 0;
  Req.PerShot = [&](size_t Shot, const CompilationResult &R) {
    if (Shot == 0)
      FirstCNOTs = R.Counts.CNOTs;
    EXPECT_EQ(R.Counts.CNOTs, FirstCNOTs);
    ++Calls;
  };
  BatchResult Batch = Engine.compileBatch(Req);
  EXPECT_EQ(Calls, Req.NumShots);
  EXPECT_EQ(Batch.Shots[0].Counts.CNOTs, FirstCNOTs);
}

TEST(CompilerEngineTest, SamplingStrategyMatchesCompileBySampling) {
  auto Graph = testGraph();
  SamplingStrategy Strategy(Graph, 0.5, 0.05);

  RNG R1(4242);
  ShotContext Ctx{0, R1};
  ShotPlan Plan = Strategy.produce(Ctx);
  CompilationResult FromStrategy =
      materializePlan(Graph->hamiltonian(), std::move(Plan));

  RNG R2(4242);
  CompilationResult Legacy = compileBySampling(*Graph, 0.5, 0.05, R2);
  EXPECT_EQ(Legacy.Sequence, FromStrategy.Sequence);
  EXPECT_EQ(Legacy.Counts.CNOTs, FromStrategy.Counts.CNOTs);
}

TEST(CompilerEngineTest, RetargetedStrategySharesGraphAndChangesBudget) {
  auto Graph = testGraph();
  SamplingStrategy Loose(Graph, 0.5, 0.1);
  SamplingStrategy Tight(Loose, 0.5, 0.01);
  EXPECT_GT(Tight.sampleCount(), Loose.sampleCount());
  EXPECT_EQ(&Tight.graph(), &Loose.graph());

  // Both remain valid producers.
  CompilerEngine Engine;
  CompilationResult A = Engine.compileOne(Loose, 1);
  CompilationResult B = Engine.compileOne(Tight, 1);
  EXPECT_EQ(A.NumSamples, Loose.sampleCount());
  EXPECT_EQ(B.NumSamples, Tight.sampleCount());
}

TEST(CompilerEngineTest, CDFAblationBatchIsAlsoJobInvariant) {
  auto Graph = testGraph();
  auto Strategy = std::make_shared<const SamplingStrategy>(Graph, 0.4, 0.1,
                                                           /*UseCDF=*/true);
  CompilerEngine Engine;
  BatchRequest Req;
  Req.Strategy = Strategy;
  Req.NumShots = 8;
  Req.Seed = 7;
  Req.Jobs = 1;
  BatchResult Serial = Engine.compileBatch(Req);
  Req.Jobs = 5;
  BatchResult Parallel = Engine.compileBatch(Req);
  EXPECT_EQ(Serial.batchHash(), Parallel.batchHash());
}

TEST(CompilerEngineTest, StochasticTrotterStrategiesRunInBatches) {
  Hamiltonian H = testHamiltonian();
  CompilerEngine Engine;

  BatchRequest Req;
  Req.Strategy =
      std::make_shared<const RandomOrderTrotterStrategy>(H, 0.5, 6);
  Req.NumShots = 5;
  Req.Jobs = 3;
  Req.Seed = 11;
  BatchResult Random = Engine.compileBatch(Req);
  // Shots use distinct permutations (identical ones are astronomically
  // unlikely across 5 shots of 6 reps).
  EXPECT_NE(Random.Shots[0].SequenceHash, Random.Shots[1].SequenceHash);
  EXPECT_EQ(Random.Samples.Mean, double(6 * H.numTerms()));

  Req.Strategy = std::make_shared<const SparStoStrategy>(H, 0.3, 8, 1.5);
  BatchResult Sparse = Engine.compileBatch(Req);
  // Sparsification drops terms: fewer visits than dense Trotter on avg.
  EXPECT_LT(Sparse.Samples.Mean, double(8 * H.numTerms()));
  Req.Jobs = 1;
  EXPECT_EQ(Engine.compileBatch(Req).batchHash(), Sparse.batchHash());
}
