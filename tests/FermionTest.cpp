//===- tests/FermionTest.cpp - Jordan-Wigner tests -----------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fermion/JordanWigner.h"

#include <gtest/gtest.h>

using namespace marqsim;

namespace {

/// {A, B} = AB + BA.
PauliSum anticommutator(const PauliSum &A, const PauliSum &B) {
  return A * B + B * A;
}

/// [A, B] = AB - BA.
PauliSum commutator(const PauliSum &A, const PauliSum &B) {
  return A * B - B * A;
}

bool equalsScalar(const PauliSum &S, Complex C) {
  PauliSum D = S - PauliSum::scalar(C);
  return D.isZero(1e-12);
}

} // namespace

TEST(JordanWignerTest, CanonicalAnticommutationRelations) {
  const unsigned Modes = 4;
  for (unsigned P = 0; P < Modes; ++P)
    for (unsigned Q = 0; Q < Modes; ++Q) {
      // {a_p, a_q^dag} = delta_pq.
      PauliSum AC = anticommutator(jwAnnihilation(P), jwCreation(Q));
      EXPECT_TRUE(equalsScalar(AC, P == Q ? Complex(1, 0) : Complex(0, 0)))
          << "p=" << P << " q=" << Q;
      // {a_p, a_q} = 0.
      PauliSum AA = anticommutator(jwAnnihilation(P), jwAnnihilation(Q));
      EXPECT_TRUE(AA.isZero(1e-12)) << "p=" << P << " q=" << Q;
    }
}

TEST(JordanWignerTest, AnnihilationSquaresToZero) {
  for (unsigned P = 0; P < 4; ++P) {
    PauliSum Sq = jwAnnihilation(P) * jwAnnihilation(P);
    EXPECT_TRUE(Sq.isZero(1e-12));
    PauliSum SqDag = jwCreation(P) * jwCreation(P);
    EXPECT_TRUE(SqDag.isZero(1e-12));
  }
}

TEST(JordanWignerTest, NumberOperatorIdentity) {
  for (unsigned P = 0; P < 4; ++P) {
    PauliSum N = jwCreation(P) * jwAnnihilation(P);
    PauliSum Expected = jwNumber(P);
    EXPECT_TRUE((N - Expected).isZero(1e-12));
    // n^2 = n (projector).
    EXPECT_TRUE((N * N - N).isZero(1e-12));
  }
}

TEST(JordanWignerTest, MajoranaAlgebra) {
  const unsigned Modes = 6; // Majorana indices 0..5 over 3 qubits
  for (unsigned I = 0; I < Modes; ++I)
    for (unsigned J = 0; J < Modes; ++J) {
      PauliSum AC = anticommutator(jwMajorana(I), jwMajorana(J));
      // {chi_i, chi_j} = 2 delta_ij.
      EXPECT_TRUE(equalsScalar(AC, I == J ? Complex(2, 0) : Complex(0, 0)))
          << "i=" << I << " j=" << J;
    }
}

TEST(JordanWignerTest, MajoranaFromLadderOperators) {
  for (unsigned P = 0; P < 3; ++P) {
    PauliSum Chi0 = jwAnnihilation(P) + jwCreation(P);
    EXPECT_TRUE((Chi0 - jwMajorana(2 * P)).isZero(1e-12));
    PauliSum Chi1 =
        (jwAnnihilation(P) - jwCreation(P)) * Complex(0.0, -1.0);
    EXPECT_TRUE((Chi1 - jwMajorana(2 * P + 1)).isZero(1e-12));
  }
}

TEST(JordanWignerTest, OneBodyTermsAreHermitian) {
  for (unsigned P = 0; P < 4; ++P)
    for (unsigned Q = 0; Q < 4; ++Q) {
      PauliSum T = jwOneBody(0.37, P, Q);
      EXPECT_TRUE(T.isHermitian()) << "p=" << P << " q=" << Q;
    }
}

TEST(JordanWignerTest, OneBodyHoppingStructure) {
  // a_0^dag a_1 + a_1^dag a_0 = (X X + Y Y) / 2 on qubits 0,1.
  PauliSum T = jwOneBody(1.0, 0, 1);
  Hamiltonian H = T.toHamiltonian(2);
  ASSERT_EQ(H.numTerms(), 2u);
  for (const auto &Term : H.terms())
    EXPECT_NEAR(Term.Coeff, 0.5, 1e-12);
}

TEST(JordanWignerTest, TwoBodyPauliExclusion) {
  // p == q annihilates the creation pair.
  PauliSum T = jwTwoBody(1.0, 2, 2, 1, 0);
  EXPECT_TRUE(T.isZero(1e-12));
  PauliSum T2 = jwTwoBody(1.0, 3, 2, 1, 1);
  EXPECT_TRUE(T2.isZero(1e-12));
}

TEST(JordanWignerTest, TwoBodyHermitianAndCommutesWithParity) {
  PauliSum T = jwTwoBody(0.8, 3, 2, 1, 0);
  EXPECT_FALSE(T.isZero());
  EXPECT_TRUE(T.isHermitian());
  // Every fermionic bilinear/quartic commutes with total parity Z...Z.
  PauliSum Parity =
      PauliSum::term(Complex(1, 0), PauliString(0, 0xF));
  EXPECT_TRUE(commutator(T, Parity).isZero(1e-12));
}

TEST(JordanWignerTest, DensityDensityIsDiagonal) {
  // a_p^dag a_q^dag a_q a_p = n_p n_q: only I/Z strings appear.
  PauliSum T = jwTwoBody(1.0, 0, 2, 2, 0);
  EXPECT_FALSE(T.isZero());
  for (const auto &[P, C] : T.terms())
    EXPECT_EQ(P.xMask(), 0u) << "non-diagonal term in density-density";
  // And it equals 2 * n_0 n_2 (term + its adjoint are identical here).
  PauliSum NN = jwNumber(0) * jwNumber(2) * Complex(2.0, 0.0);
  EXPECT_TRUE((T - NN).isZero(1e-12));
}

TEST(JordanWignerTest, ParityStringsOnHighModes) {
  // a_3 must carry Z parity on qubits 0..2.
  PauliSum A = jwAnnihilation(3);
  for (const auto &[P, C] : A.terms()) {
    EXPECT_EQ(P.zMask() & 0x7ULL, 0x7ULL);
    EXPECT_EQ(P.xMask(), 1ULL << 3);
  }
}
