//===- tests/ChannelTest.cpp - channel-level Theorem 4.1 tests -----------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Verifies the object Theorem 4.1's proof actually bounds: the per-step
// mixed channel E(rho) = sum_j pi_j e^{i tau H_j} rho e^{-i tau H_j} and
// its N-fold composition against the exact evolution.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "linalg/Expm.h"
#include "sim/DensityMatrix.h"
#include "sim/Evolution.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

namespace {

StateVector randomPure(unsigned N, RNG &Rng) {
  CVector V(size_t(1) << N);
  for (auto &A : V)
    A = Complex(Rng.gaussian(), Rng.gaussian());
  double Norm = vectorNorm(V);
  for (auto &A : V)
    A /= Norm;
  return StateVector(N, V);
}

} // namespace

TEST(DensityMatrixTest, PureStateProperties) {
  RNG Rng(131);
  StateVector Psi = randomPure(3, Rng);
  DensityMatrix Rho(Psi);
  EXPECT_NEAR(Rho.trace(), 1.0, 1e-12);
  // Purity tr(rho^2) = 1.
  Matrix Sq = Rho.matrix() * Rho.matrix();
  EXPECT_NEAR(Sq.trace().real(), 1.0, 1e-12);
  EXPECT_NEAR(Rho.overlap(Psi), 1.0, 1e-12);
}

TEST(DensityMatrixTest, MaximallyMixedProperties) {
  DensityMatrix Rho = DensityMatrix::maximallyMixed(3);
  EXPECT_NEAR(Rho.trace(), 1.0, 1e-12);
  Matrix Sq = Rho.matrix() * Rho.matrix();
  EXPECT_NEAR(Sq.trace().real(), 1.0 / 8.0, 1e-12);
}

TEST(DensityMatrixTest, PauliExpMatchesDenseConjugation) {
  RNG Rng(132);
  for (int Trial = 0; Trial < 15; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(3);
    PauliString P;
    for (unsigned Q = 0; Q < N; ++Q)
      P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
    double Theta = Rng.uniform(-1.5, 1.5);
    StateVector Psi = randomPure(N, Rng);
    DensityMatrix Fast(Psi);
    Fast.applyPauliExp(P, Theta);
    DensityMatrix Slow(Psi);
    Slow.applyUnitary(expm(P.toMatrix(N) * Complex(0, Theta)));
    ASSERT_NEAR(Fast.matrix().maxAbsDiff(Slow.matrix()), 0.0, 1e-10);
  }
}

TEST(DensityMatrixTest, TraceDistanceBasics) {
  DensityMatrix A(2, 0), B(2, 0), C(2, 3);
  EXPECT_NEAR(A.traceDistance(B), 0.0, 1e-10);
  // Orthogonal pure states have trace distance 1.
  EXPECT_NEAR(A.traceDistance(C), 1.0, 1e-9);
  // Pure vs maximally mixed on n qubits: 1 - 1/2^n.
  DensityMatrix Mixed = DensityMatrix::maximallyMixed(2);
  EXPECT_NEAR(A.traceDistance(Mixed), 1.0 - 0.25, 1e-9);
}

TEST(ChannelTest, SamplingChannelPreservesTraceAndHermiticity) {
  RNG Rng(133);
  Hamiltonian H = makeRandomHamiltonian(3, 6, Rng);
  std::vector<double> Pi = H.stationaryDistribution();
  StateVector Psi = randomPure(3, Rng);
  DensityMatrix Rho(Psi);
  Rho.applySamplingChannel(H, Pi, 0.07);
  EXPECT_NEAR(Rho.trace(), 1.0, 1e-10);
  EXPECT_NEAR(Rho.matrix().maxAbsDiff(Rho.matrix().adjoint()), 0.0, 1e-10);
  // A proper mixture strictly reduces purity for non-commuting terms.
  Matrix Sq = Rho.matrix() * Rho.matrix();
  EXPECT_LT(Sq.trace().real(), 1.0 + 1e-12);
}

TEST(ChannelTest, TheoremBoundHoldsAtChannelLevel) {
  // E^N vs exact evolution in trace distance: Theorem 4.1 promises
  // error <~ 2 lambda^2 t^2 / N.
  RNG Rng(134);
  Hamiltonian H = makeRandomHamiltonian(2, 4, Rng).rescaledToLambda(1.2);
  const double T = 0.8;
  const double Lambda = H.lambda();
  std::vector<double> Pi = H.stationaryDistribution();
  Matrix U = exactUnitary(H, T);

  StateVector Psi = randomPure(2, Rng);
  for (size_t N : {8u, 32u, 128u}) {
    DensityMatrix Rho(Psi);
    double Tau = Lambda * T / static_cast<double>(N);
    for (size_t K = 0; K < N; ++K)
      Rho.applySamplingChannel(H, Pi, Tau);
    DensityMatrix Target(Psi);
    Target.applyUnitary(U);
    double Dist = Rho.traceDistance(Target);
    double Bound = 2.0 * Lambda * Lambda * T * T / static_cast<double>(N);
    // The bound is on the diamond norm; trace distance on one input is
    // below it. Allow a small constant for the higher-order terms.
    EXPECT_LE(Dist, 2.0 * Bound) << "N=" << N;
  }
}

TEST(ChannelTest, ErrorDecaysLikeOneOverN) {
  RNG Rng(135);
  Hamiltonian H = makeRandomHamiltonian(2, 4, Rng).rescaledToLambda(1.5);
  const double T = 0.9;
  std::vector<double> Pi = H.stationaryDistribution();
  Matrix U = exactUnitary(H, T);
  StateVector Psi = randomPure(2, Rng);

  auto ChannelError = [&](size_t N) {
    DensityMatrix Rho(Psi);
    double Tau = H.lambda() * T / static_cast<double>(N);
    for (size_t K = 0; K < N; ++K)
      Rho.applySamplingChannel(H, Pi, Tau);
    DensityMatrix Target(Psi);
    Target.applyUnitary(U);
    return Rho.traceDistance(Target);
  };
  double E16 = ChannelError(16);
  double E64 = ChannelError(64);
  double E256 = ChannelError(256);
  EXPECT_GT(E16, E64);
  EXPECT_GT(E64, E256);
  // Quadrupling N cuts the error by ~4 (first-order channel error ~ 1/N).
  EXPECT_NEAR(E16 / E64, 4.0, 1.5);
  EXPECT_NEAR(E64 / E256, 4.0, 1.5);
}

TEST(ChannelTest, ChannelIsInvariantToTermOrder) {
  // The per-step channel depends only on (pi, tau), not on any ordering —
  // the reason every valid transition matrix shares the error bound.
  RNG Rng(136);
  Hamiltonian H = makeRandomHamiltonian(2, 5, Rng);
  std::vector<double> Pi = H.stationaryDistribution();
  // Build a permuted copy of H (terms listed in reverse).
  Hamiltonian Rev(H.numQubits());
  for (size_t I = H.numTerms(); I-- > 0;)
    Rev.addTerm(H.term(I).Coeff, H.term(I).String);
  std::vector<double> PiRev = Rev.stationaryDistribution();

  StateVector Psi = randomPure(2, Rng);
  DensityMatrix A(Psi), B(Psi);
  A.applySamplingChannel(H, Pi, 0.05);
  B.applySamplingChannel(Rev, PiRev, 0.05);
  EXPECT_NEAR(A.matrix().maxAbsDiff(B.matrix()), 0.0, 1e-12);
}
