//===- tests/FlowTest.cpp - min-cost flow solver tests -------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "flow/MinCostFlow.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

using namespace marqsim;

TEST(MinCostFlowTest, PicksCheaperOfTwoPaths) {
  // S -(cap 10, cost 1)-> A -> T and S -(cap 10, cost 5)-> B -> T.
  MinCostFlow Net(4);
  size_t SA = Net.addEdge(0, 1, 10, 1);
  size_t AT = Net.addEdge(1, 3, 10, 0);
  size_t SB = Net.addEdge(0, 2, 10, 5);
  size_t BT = Net.addEdge(2, 3, 10, 0);
  auto R = Net.solve(0, 3, 10);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.TotalCost, 10);
  EXPECT_EQ(Net.flowOnEdge(SA), 10);
  EXPECT_EQ(Net.flowOnEdge(SB), 0);
  EXPECT_EQ(Net.flowOnEdge(AT), 10);
  EXPECT_EQ(Net.flowOnEdge(BT), 0);
}

TEST(MinCostFlowTest, SpillsToExpensivePathWhenSaturated) {
  MinCostFlow Net(4);
  size_t SA = Net.addEdge(0, 1, 6, 1);
  Net.addEdge(1, 3, 6, 0);
  size_t SB = Net.addEdge(0, 2, 10, 5);
  Net.addEdge(2, 3, 10, 0);
  auto R = Net.solve(0, 3, 10);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(Net.flowOnEdge(SA), 6);
  EXPECT_EQ(Net.flowOnEdge(SB), 4);
  EXPECT_EQ(R.TotalCost, 6 * 1 + 4 * 5);
}

TEST(MinCostFlowTest, InfeasibleWhenCutTooSmall) {
  MinCostFlow Net(3);
  Net.addEdge(0, 1, 3, 1);
  Net.addEdge(1, 2, 3, 1);
  auto R = Net.solve(0, 2, 5);
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.FlowSent, 3);
}

TEST(MinCostFlowTest, ZeroAmountIsTriviallyFeasible) {
  MinCostFlow Net(2);
  Net.addEdge(0, 1, 1, 1);
  auto R = Net.solve(0, 1, 0);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.TotalCost, 0);
}

TEST(MinCostFlowTest, ReroutesThroughResidualEdges) {
  // Classic residual-graph test: the cheap direct guess must be partially
  // undone to achieve optimality.
  //      S -> A (cap 1, cost 1),  S -> B (cap 1, cost 4)
  //      A -> B (cap 1, cost 1),  A -> T (cap 1, cost 6)
  //      B -> T (cap 2, cost 1)
  // Best flow of 2: S->A->B->T (cost 3) + S->B->T (cost 5) = 8,
  // rather than S->A->T (7) + S->B->T (5) = 12.
  MinCostFlow Net(4);
  Net.addEdge(0, 1, 1, 1);
  Net.addEdge(0, 2, 1, 4);
  Net.addEdge(1, 2, 1, 1);
  size_t AT = Net.addEdge(1, 3, 1, 6);
  Net.addEdge(2, 3, 2, 1);
  auto R = Net.solve(0, 3, 2);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.TotalCost, 8);
  EXPECT_EQ(Net.flowOnEdge(AT), 0);
}

TEST(MinCostFlowTest, HandlesNegativeCosts) {
  // A negative-cost edge makes the Bellman-Ford initialization necessary.
  MinCostFlow Net(4);
  Net.addEdge(0, 1, 5, 2);
  Net.addEdge(1, 2, 5, -3);
  Net.addEdge(2, 3, 5, 2);
  Net.addEdge(0, 3, 5, 4);
  auto R = Net.solve(0, 3, 5);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.TotalCost, 5 * (2 - 3 + 2));
}

TEST(MinCostFlowTest, ParallelEdgesSupported) {
  MinCostFlow Net(2);
  size_t E1 = Net.addEdge(0, 1, 3, 2);
  size_t E2 = Net.addEdge(0, 1, 3, 1);
  auto R = Net.solve(0, 1, 4);
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(Net.flowOnEdge(E2), 3);
  EXPECT_EQ(Net.flowOnEdge(E1), 1);
  EXPECT_EQ(R.TotalCost, 3 * 1 + 1 * 2);
}

namespace {

/// Brute-force optimum of a small transportation problem: supplies[i] units
/// leave row i, demands[j] units arrive at column j, unit cost Cost[i][j].
/// Enumerates all integral assignments recursively.
int64_t bruteForceTransport(const std::vector<int64_t> &Supplies,
                            const std::vector<int64_t> &Demands,
                            const std::vector<std::vector<int64_t>> &Cost) {
  const size_t R = Supplies.size(), C = Demands.size();
  std::vector<int64_t> Remaining = Demands;
  int64_t Best = INT64_MAX;
  // Flatten rows: assign each row's supply across columns recursively.
  std::function<void(size_t, int64_t, int64_t)> Go =
      [&](size_t Row, int64_t LeftInRow, int64_t Acc) {
        if (Acc >= Best)
          return;
        if (Row == R) {
          for (int64_t D : Remaining)
            if (D != 0)
              return;
          Best = std::min(Best, Acc);
          return;
        }
        if (LeftInRow == 0) {
          Go(Row + 1, Row + 1 < R ? Supplies[Row + 1] : 0, Acc);
          return;
        }
        for (size_t Col = 0; Col < C; ++Col) {
          if (Remaining[Col] == 0)
            continue;
          int64_t Amount = 1; // move one unit at a time (small instances)
          Remaining[Col] -= Amount;
          Go(Row, LeftInRow - Amount, Acc + Cost[Row][Col]);
          Remaining[Col] += Amount;
        }
      };
  Go(0, Supplies[0], 0);
  return Best;
}

} // namespace

TEST(MinCostFlowTest, MatchesBruteForceOnRandomTransportInstances) {
  RNG Rng(61);
  for (int Trial = 0; Trial < 12; ++Trial) {
    const size_t N = 3;
    std::vector<int64_t> Supply(N), Demand(N);
    int64_t Total = 0;
    for (size_t I = 0; I < N; ++I) {
      Supply[I] = 1 + static_cast<int64_t>(Rng.uniformInt(2));
      Total += Supply[I];
    }
    // Split the same total across demands.
    int64_t Left = Total;
    for (size_t J = 0; J + 1 < N; ++J) {
      Demand[J] = Left > 0 ? static_cast<int64_t>(
                                 Rng.uniformInt(static_cast<uint64_t>(Left)) +
                                 (Left == Total ? 1 : 0))
                           : 0;
      Demand[J] = std::min(Demand[J], Left);
      Left -= Demand[J];
    }
    Demand[N - 1] = Left;

    std::vector<std::vector<int64_t>> Cost(N, std::vector<int64_t>(N));
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        Cost[I][J] = static_cast<int64_t>(Rng.uniformInt(9));

    MinCostFlow Net(2 * N + 2);
    for (size_t I = 0; I < N; ++I)
      Net.addEdge(0, 1 + I, Supply[I], 0);
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        Net.addEdge(1 + I, 1 + N + J, MinCostFlow::kInfiniteCapacity,
                    Cost[I][J]);
    for (size_t J = 0; J < N; ++J)
      Net.addEdge(1 + N + J, 2 * N + 1, Demand[J], 0);
    auto R = Net.solve(0, 2 * N + 1, Total);
    ASSERT_TRUE(R.Feasible);
    int64_t Brute = bruteForceTransport(Supply, Demand, Cost);
    EXPECT_EQ(R.TotalCost, Brute) << "trial " << Trial;
  }
}

struct TransportSweepCase {
  size_t Rows;
  size_t Cols;
  uint64_t Seed;
};

class TransportOptimalitySweep
    : public ::testing::TestWithParam<TransportSweepCase> {};

TEST_P(TransportOptimalitySweep, MatchesBruteForce) {
  const auto &Case = GetParam();
  RNG Rng(Case.Seed);
  std::vector<int64_t> Supply(Case.Rows), Demand(Case.Cols, 0);
  int64_t Total = 0;
  for (auto &S : Supply) {
    S = 1 + static_cast<int64_t>(Rng.uniformInt(2));
    Total += S;
  }
  for (int64_t K = 0; K < Total; ++K)
    ++Demand[Rng.uniformInt(Case.Cols)];

  std::vector<std::vector<int64_t>> Cost(
      Case.Rows, std::vector<int64_t>(Case.Cols));
  for (auto &Row : Cost)
    for (auto &C : Row)
      C = static_cast<int64_t>(Rng.uniformInt(12));

  const size_t Src = 0, Snk = Case.Rows + Case.Cols + 1;
  MinCostFlow Net(Case.Rows + Case.Cols + 2);
  for (size_t I = 0; I < Case.Rows; ++I)
    Net.addEdge(Src, 1 + I, Supply[I], 0);
  for (size_t I = 0; I < Case.Rows; ++I)
    for (size_t J = 0; J < Case.Cols; ++J)
      Net.addEdge(1 + I, 1 + Case.Rows + J, MinCostFlow::kInfiniteCapacity,
                  Cost[I][J]);
  for (size_t J = 0; J < Case.Cols; ++J)
    Net.addEdge(1 + Case.Rows + J, Snk, Demand[J], 0);
  auto R = Net.solve(Src, Snk, Total);
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.TotalCost, bruteForceTransport(Supply, Demand, Cost));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransportOptimalitySweep,
    ::testing::Values(TransportSweepCase{2, 2, 11},
                      TransportSweepCase{2, 3, 12},
                      TransportSweepCase{3, 2, 13},
                      TransportSweepCase{3, 3, 14},
                      TransportSweepCase{2, 4, 15},
                      TransportSweepCase{4, 2, 16},
                      TransportSweepCase{3, 3, 17},
                      TransportSweepCase{3, 3, 18}));

TEST(MinCostFlowTest, LargeBipartiteInstanceRunsQuickly) {
  // Shape of the MarQSim MCFP: complete bipartite, small integer costs.
  RNG Rng(62);
  const size_t N = 120;
  const int64_t Scale = 1'000'000;
  std::vector<int64_t> Units(N, Scale / static_cast<int64_t>(N));
  Units[0] += Scale % static_cast<int64_t>(N);
  MinCostFlow Net(2 * N + 2);
  for (size_t I = 0; I < N; ++I)
    Net.addEdge(0, 1 + I, Units[I], 0);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      if (I == J)
        continue;
      Net.addEdge(1 + I, 1 + N + J, MinCostFlow::kInfiniteCapacity,
                  static_cast<int64_t>(Rng.uniformInt(40)));
    }
  for (size_t J = 0; J < N; ++J)
    Net.addEdge(1 + N + J, 2 * N + 1, Units[J], 0);
  auto R = Net.solve(0, 2 * N + 1, Scale);
  EXPECT_TRUE(R.Feasible);
  EXPECT_GE(R.TotalCost, 0);
}
