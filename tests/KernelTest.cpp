//===- tests/KernelTest.cpp - dispatched SIMD kernel tier tests ---------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pins the determinism contract of sim/Kernels.h: every FP64 kernel the
// dispatcher can select (scalar, AVX2+FMA, AVX-512, NEON) produces
// bit-identical amplitudes for the same inputs — on interleaved
// statevectors and on SoA panel planes, across panel widths, for
// butterfly and Z-diagonal paths, from basis and from random starting
// states, and at the short pivot runs (1, 2, 4) where the wide tiers
// delegate down the precedence chain. The fused evolve+overlap tail must
// reproduce the unfused sweep-then-overlapWith path bit for bit, and the
// FP32 tier (panels and the interleaved walk) is held to the same
// scalar-vs-SIMD bit-identity among its own implementations, plus a
// tolerance band against FP64. On hosts whose best tier *is* scalar the
// cross-tier comparisons still run (trivially); the contract they pin is
// then enforced by the AVX2/AVX-512/NEON CI hosts.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "sim/Fidelity.h"
#include "sim/Kernels.h"
#include "sim/StatePanel.h"
#include "sim/StateVector.h"
#include "support/AlignedAlloc.h"
#include "support/RNG.h"
#include "support/Serial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace marqsim;

namespace {

/// Every test that repins dispatch restores the default policy on exit so
/// test order never leaks a forced tier into unrelated suites.
struct DispatchRestorer {
  ~DispatchRestorer() { kernels::selectAuto(); }
};

/// The best table this host can dispatch to, ignoring the environment —
/// the tier whose output must match the scalar reference bit for bit.
const kernels::Ops &bestOps() {
  kernels::selectForTesting(/*ForceScalar=*/false);
  const kernels::Ops &Best = kernels::active();
  kernels::selectAuto();
  return Best;
}

uint32_t floatBits(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

CVector randomState(unsigned N, RNG &Rng) {
  CVector V(size_t(1) << N);
  for (auto &A : V)
    A = Complex(Rng.gaussian(), Rng.gaussian());
  return V;
}

/// A random Pauli string; \p ZOnly restricts to the diagonal alphabet.
PauliString randomString(unsigned N, RNG &Rng, bool ZOnly = false) {
  PauliString P;
  for (unsigned Q = 0; Q < N; ++Q)
    P.setOp(Q, ZOnly ? (Rng.bernoulli(0.5) ? PauliOpKind::Z : PauliOpKind::I)
                     : static_cast<PauliOpKind>(Rng.uniformInt(4)));
  return P;
}

/// Routes one rotation through \p K exactly as StateVector::applyPauliExp
/// does (butterfly when xMask != 0, diagonal fast path otherwise).
void applyThrough(const kernels::Ops &K, CVector &Amp, const PauliString &P,
                  double Theta) {
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  const detail::PauliPhases Phases(P);
  const uint64_t XM = P.xMask();
  if (XM == 0)
    K.ExpDiagonalF64(Amp.data(), Amp.size(), CosT, ISinT, Phases);
  else
    K.ExpButterflyF64(Amp.data(), Amp.size(), XM, CosT, ISinT, Phases);
}

::testing::AssertionResult bitIdentical(const CVector &A, const CVector &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (size_t I = 0; I < A.size(); ++I)
    if (serial::doubleBits(A[I].real()) != serial::doubleBits(B[I].real()) ||
        serial::doubleBits(A[I].imag()) != serial::doubleBits(B[I].imag()))
      return ::testing::AssertionFailure()
             << "amplitude " << I << " differs: (" << A[I].real() << ", "
             << A[I].imag() << ") vs (" << B[I].real() << ", " << B[I].imag()
             << ")";
  return ::testing::AssertionSuccess();
}

template <typename Real>
::testing::AssertionResult
panelsBitIdentical(const BasicStatePanel<Real> &A,
                   const BasicStatePanel<Real> &B) {
  const size_t N = A.dim() * A.laneStride();
  if (B.dim() * B.laneStride() != N)
    return ::testing::AssertionFailure() << "panel shape mismatch";
  if (std::memcmp(A.realPlane(), B.realPlane(), N * sizeof(Real)) != 0 ||
      std::memcmp(A.imagPlane(), B.imagPlane(), N * sizeof(Real)) != 0)
    return ::testing::AssertionFailure() << "panel planes differ bitwise";
  return ::testing::AssertionSuccess();
}

/// A schedule of rotations covering butterflies (low and high pivots),
/// Z-diagonals, and identities, with the angle mix a real replay sees.
std::vector<std::pair<PauliString, double>> mixedSchedule(unsigned N,
                                                          RNG &Rng) {
  std::vector<std::pair<PauliString, double>> Sched;
  for (unsigned I = 0; I < 24; ++I)
    Sched.emplace_back(randomString(N, Rng), Rng.gaussian() * 0.4);
  for (unsigned I = 0; I < 8; ++I)
    Sched.emplace_back(randomString(N, Rng, /*ZOnly=*/true),
                       Rng.gaussian() * 0.4);
  Sched.emplace_back(PauliString(), 0.37); // identity global phase
  return Sched;
}

std::vector<uint64_t> randomBasis(unsigned N, size_t Cols, RNG &Rng) {
  std::vector<uint64_t> Basis(Cols);
  for (auto &B : Basis)
    B = static_cast<uint64_t>(Rng.uniformInt(1u << N));
  return Basis;
}

} // namespace

TEST(KernelDispatchTest, ActiveTierIsKnown) {
  const std::string Name = kernels::activeName();
  EXPECT_TRUE(Name == "scalar" || Name == "avx2-fma" || Name == "avx512" ||
              Name == "neon")
      << "unexpected kernel tier: " << Name;
  if (kernels::forcedScalarByEnv() &&
      kernels::tierOverrideFromEnv() == "scalar") {
    EXPECT_EQ(Name, "scalar");
  }
  EXPECT_STREQ(kernels::scalarOps().Name, "scalar");
}

TEST(KernelDispatchTest, AvailableOpsBestFirstScalarLast) {
  const auto Tiers = kernels::availableOps();
  ASSERT_FALSE(Tiers.empty());
  EXPECT_STREQ(Tiers.back()->Name, "scalar");
  // availableOps reflects the CPU, not the environment pin, so the best
  // entry is what detectedName reports.
  EXPECT_STREQ(Tiers.front()->Name, kernels::detectedName());
  for (const kernels::Ops *Tier : Tiers)
    EXPECT_EQ(kernels::findTier(Tier->Name), Tier);
  EXPECT_EQ(kernels::findTier("not-a-tier"), nullptr);
}

TEST(KernelDispatchTest, KernelTierEnvironmentPinsNamedTier) {
  DispatchRestorer Restore;
  const char *Prev = std::getenv("MARQSIM_KERNEL_TIER");
  const std::string Saved = Prev ? Prev : "";
  for (const kernels::Ops *Tier : kernels::availableOps()) {
    ASSERT_EQ(setenv("MARQSIM_KERNEL_TIER", Tier->Name, 1), 0);
    EXPECT_EQ(kernels::tierOverrideFromEnv(), Tier->Name);
    kernels::selectAuto();
    EXPECT_STREQ(kernels::activeName(), Tier->Name);
  }
  if (Prev)
    ASSERT_EQ(setenv("MARQSIM_KERNEL_TIER", Saved.c_str(), 1), 0);
  else
    ASSERT_EQ(unsetenv("MARQSIM_KERNEL_TIER"), 0);
}

TEST(KernelDispatchDeathTest, UnavailableTierPinFailsFast) {
  // Death tests fork; "threadsafe" re-executes the binary so ThreadPool
  // threads spawned by other suites can't deadlock the child.
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const char *Unavailable = nullptr;
  for (const char *Cand : {"neon", "avx2-fma", "avx512"})
    if (!kernels::findTier(Cand)) {
      Unavailable = Cand;
      break;
    }
  ASSERT_NE(Unavailable, nullptr)
      << "host claims to run every tier — impossible ISA mix";
  EXPECT_EXIT(
      {
        setenv("MARQSIM_KERNEL_TIER", Unavailable, 1);
        kernels::selectAuto();
        (void)kernels::active();
      },
      ::testing::ExitedWithCode(1), "not runnable on this host");
  // Unknown names fail the same way, naming the runnable tiers.
  EXPECT_EXIT(
      {
        setenv("MARQSIM_KERNEL_TIER", "turbo9000", 1);
        kernels::selectAuto();
        (void)kernels::active();
      },
      ::testing::ExitedWithCode(1), "not runnable on this host");
}

TEST(KernelDispatchTest, ForceScalarEnvironmentHonored) {
  DispatchRestorer Restore;
  const char *Prev = std::getenv("MARQSIM_FORCE_SCALAR");
  const std::string Saved = Prev ? Prev : "";
  ASSERT_EQ(setenv("MARQSIM_FORCE_SCALAR", "1", 1), 0);
  EXPECT_TRUE(kernels::forcedScalarByEnv());
  kernels::selectAuto();
  EXPECT_STREQ(kernels::activeName(), "scalar");
  // "0" and empty mean unset.
  ASSERT_EQ(setenv("MARQSIM_FORCE_SCALAR", "0", 1), 0);
  EXPECT_FALSE(kernels::forcedScalarByEnv());
  if (Prev)
    ASSERT_EQ(setenv("MARQSIM_FORCE_SCALAR", Saved.c_str(), 1), 0);
  else
    ASSERT_EQ(unsetenv("MARQSIM_FORCE_SCALAR"), 0);
}

TEST(KernelDispatchTest, SelectForTestingPinsAndAutoRestores) {
  DispatchRestorer Restore;
  const kernels::Ops &Best = bestOps(); // before pinning: bestOps repins
  kernels::selectForTesting(/*ForceScalar=*/true);
  EXPECT_STREQ(kernels::activeName(), "scalar");
  kernels::selectForTesting(/*ForceScalar=*/false);
  EXPECT_STREQ(kernels::activeName(), Best.Name);
}

// Interleaved statevector kernels: the best tier must reproduce the scalar
// reference bit for bit — random states, basis states, every dim from a
// two-amplitude vector (below every SIMD width) up through 2^7, butterfly
// pivots both below and above the vector width, and Z-diagonals.
TEST(KernelBitIdentityTest, StateVectorKernelsMatchScalarBitwise) {
  const kernels::Ops &Best = bestOps();
  RNG Rng(2025);
  for (unsigned N : {1u, 2u, 3u, 5u, 7u}) {
    for (unsigned Trial = 0; Trial < 16; ++Trial) {
      CVector Start = randomState(N, Rng);
      if (Trial < 4) { // basis states exercise the sign-of-zero paths
        Start.assign(Start.size(), Complex(0.0, 0.0));
        Start[Trial % Start.size()] = Complex(1.0, 0.0);
      }
      const PauliString P = randomString(N, Rng, /*ZOnly=*/Trial % 3 == 0);
      const double Theta = Rng.gaussian() * 0.7;
      CVector A = Start, B = Start;
      applyThrough(kernels::scalarOps(), A, P, Theta);
      applyThrough(Best, B, P, Theta);
      ASSERT_TRUE(bitIdentical(A, B))
          << "tier " << Best.Name << ", " << N << " qubits, trial " << Trial;
    }
  }
}

// Panel kernels: a width-1 panel, an odd width straddling the lane padding,
// the PreferredWidth block, and an "all columns" width wider than a block,
// each evolved through a mixed schedule under the scalar tier and under the
// best tier. Planes (including padding lanes) must agree bitwise.
TEST(KernelBitIdentityTest, PanelKernelsMatchScalarBitwise) {
  DispatchRestorer Restore;
  const unsigned N = 5;
  RNG Rng(4242);
  const auto Sched = mixedSchedule(N, Rng);
  for (size_t Cols : {size_t(1), size_t(3), StatePanel::PreferredWidth,
                      size_t(17)}) {
    const auto Basis = randomBasis(N, Cols, Rng);
    kernels::selectForTesting(/*ForceScalar=*/true);
    StatePanel Scalar(N, Basis);
    for (const auto &[P, Theta] : Sched)
      Scalar.applyPauliExpAll(P, Theta);
    kernels::selectForTesting(/*ForceScalar=*/false);
    StatePanel Simd(N, Basis);
    for (const auto &[P, Theta] : Sched)
      Simd.applyPauliExpAll(P, Theta);
    ASSERT_TRUE(panelsBitIdentical(Scalar, Simd)) << Cols << " columns";
  }
}

// The panel SoA kernels and the interleaved StateVector kernels are
// different code paths; under the dispatched tier a panel column must
// still be bit-identical to a serial single-state replay.
TEST(KernelBitIdentityTest, PanelColumnsMatchStateVectorUnderDispatch) {
  const unsigned N = 5;
  RNG Rng(777);
  const auto Sched = mixedSchedule(N, Rng);
  const auto Basis = randomBasis(N, 6, Rng);
  StatePanel Panel(N, Basis);
  for (const auto &[P, Theta] : Sched)
    Panel.applyPauliExpAll(P, Theta);
  for (size_t C = 0; C < Basis.size(); ++C) {
    StateVector SV(N, Basis[C]);
    for (const auto &[P, Theta] : Sched)
      SV.applyPauliExp(P, Theta);
    ASSERT_TRUE(bitIdentical(SV.amplitudes(), Panel.column(C)))
        << "column " << C;
  }
}

// The FP32 tier keeps the same scalar-vs-SIMD bit-identity among its own
// implementations (it is tolerance-defined only relative to FP64).
TEST(KernelBitIdentityTest, Fp32PanelKernelsMatchScalarBitwise) {
  DispatchRestorer Restore;
  const unsigned N = 5;
  RNG Rng(9090);
  const auto Sched = mixedSchedule(N, Rng);
  for (size_t Cols : {size_t(1), size_t(3), size_t(8), size_t(17)}) {
    const auto Basis = randomBasis(N, Cols, Rng);
    kernels::selectForTesting(/*ForceScalar=*/true);
    StatePanelF32 Scalar(N, Basis);
    for (const auto &[P, Theta] : Sched)
      Scalar.applyPauliExpAll(P, Theta);
    kernels::selectForTesting(/*ForceScalar=*/false);
    StatePanelF32 Simd(N, Basis);
    for (const auto &[P, Theta] : Sched)
      Simd.applyPauliExpAll(P, Theta);
    ASSERT_TRUE(panelsBitIdentical(Scalar, Simd)) << Cols << " columns";
  }
}

// The FP32 tier's whole point: amplitudes track the FP64 panel to float
// accuracy through a realistic rotation count.
TEST(PrecisionTest, Fp32PanelTracksFp64WithinTolerance) {
  const unsigned N = 6;
  RNG Rng(31337);
  const auto Sched = mixedSchedule(N, Rng);
  const auto Basis = randomBasis(N, 4, Rng);
  StatePanel P64(N, Basis);
  StatePanelF32 P32(N, Basis);
  for (const auto &[P, Theta] : Sched) {
    P64.applyPauliExpAll(P, Theta);
    P32.applyPauliExpAll(P, Theta);
  }
  double MaxErr = 0.0;
  for (size_t C = 0; C < Basis.size(); ++C)
    for (uint64_t X = 0; X < P64.dim(); ++X)
      MaxErr = std::max(MaxErr, std::abs(P64.at(C, X) - P32.at(C, X)));
  EXPECT_GT(MaxErr, 0.0) << "fp32 suspiciously exact — tier not exercised?";
  EXPECT_LT(MaxErr, 1e-4);
}

// FP32 narrowing of the phase constants is exact (they are 0/±1 valued).
TEST(PrecisionTest, Fp32PhaseNarrowingIsExact) {
  RNG Rng(55);
  for (unsigned Trial = 0; Trial < 32; ++Trial) {
    const PauliString P = randomString(6, Rng);
    const detail::PauliPhases Ph(P);
    const detail::PauliPhasesF32 PhF(Ph);
    for (uint64_t X : {uint64_t(0), uint64_t(5), uint64_t(63)}) {
      EXPECT_EQ(floatBits(PhF.at(X).real()),
                floatBits(static_cast<float>(Ph.at(X).real())));
      EXPECT_EQ(floatBits(PhF.at(X).imag()),
                floatBits(static_cast<float>(Ph.at(X).imag())));
    }
  }
}

// Short pivot runs: a butterfly's contiguous run length equals its pivot
// (the lowest X bit), and every wide tier delegates runs narrower than
// its vector width down the precedence chain (AVX-512 F64 needs runs of
// 4, AVX2 F64 runs of 2, and so on). Sweep single-X strings at every
// qubit position on tiny registers — run lengths 1, 2, 4, 8 — across
// every tier this host can run, for the FP64 and FP32 interleaved walks.
TEST(KernelBitIdentityTest, ShortPivotRunsMatchScalarAcrossTiers) {
  DispatchRestorer Restore;
  RNG Rng(1234);
  for (const kernels::Ops *Tier : kernels::availableOps()) {
    for (unsigned N : {1u, 2u, 3u, 4u}) {
      for (unsigned Q = 0; Q < N; ++Q) {
        for (unsigned Variant = 0; Variant < 3; ++Variant) {
          PauliString P;
          P.setOp(Q, Variant == 1 ? PauliOpKind::Y : PauliOpKind::X);
          if (Variant == 2 && N > 1) // phase-carrying high bit
            P.setOp((Q + 1) % N, PauliOpKind::Z);
          const double Theta = Rng.gaussian() * 0.6;

          CVector Start = randomState(N, Rng);
          CVector A = Start, B = Start;
          applyThrough(kernels::scalarOps(), A, P, Theta);
          applyThrough(*Tier, B, P, Theta);
          ASSERT_TRUE(bitIdentical(A, B))
              << "tier " << Tier->Name << ", " << N << " qubits, X at " << Q;

          StateVectorF32::AmpVector FStart(size_t(1) << N);
          for (auto &Amp : FStart)
            Amp = std::complex<float>(static_cast<float>(Rng.gaussian()),
                                      static_cast<float>(Rng.gaussian()));
          kernels::selectTierForTesting(kernels::scalarOps());
          StateVectorF32 FA(N, FStart);
          FA.applyPauliExp(P, Theta);
          kernels::selectTierForTesting(*Tier);
          StateVectorF32 FB(N, FStart);
          FB.applyPauliExp(P, Theta);
          kernels::selectAuto();
          for (size_t I = 0; I < FA.amplitudes().size(); ++I) {
            ASSERT_EQ(floatBits(FA.amplitudes()[I].real()),
                      floatBits(FB.amplitudes()[I].real()))
                << "tier " << Tier->Name << ", fp32 amp " << I;
            ASSERT_EQ(floatBits(FA.amplitudes()[I].imag()),
                      floatBits(FB.amplitudes()[I].imag()))
                << "tier " << Tier->Name << ", fp32 amp " << I;
          }
        }
      }
    }
  }
}

// Panels under every runnable tier (not just best-vs-scalar): the planes
// must agree bitwise, including at one- and two-qubit dims.
TEST(KernelBitIdentityTest, PanelKernelsMatchScalarAcrossAllTiers) {
  DispatchRestorer Restore;
  RNG Rng(8787);
  for (unsigned N : {1u, 2u, 5u}) {
    const auto Sched = mixedSchedule(N, Rng);
    const auto Basis = randomBasis(N, 5, Rng);
    kernels::selectTierForTesting(kernels::scalarOps());
    StatePanel Scalar(N, Basis);
    for (const auto &[P, Theta] : Sched)
      Scalar.applyPauliExpAll(P, Theta);
    for (const kernels::Ops *Tier : kernels::availableOps()) {
      kernels::selectTierForTesting(*Tier);
      StatePanel Simd(N, Basis);
      for (const auto &[P, Theta] : Sched)
        Simd.applyPauliExpAll(P, Theta);
      ASSERT_TRUE(panelsBitIdentical(Scalar, Simd))
          << "tier " << Tier->Name << ", " << N << " qubits";
    }
    kernels::selectAuto();
  }
}

// The fused evolve+overlap tail vs the unfused sweep-then-overlapWith
// path: panel planes and every per-column overlap must agree bit for bit,
// for butterfly, diagonal, and identity tails, under every runnable tier.
TEST(KernelBitIdentityTest, FusedOverlapMatchesUnfusedBitwise) {
  DispatchRestorer Restore;
  const unsigned N = 5;
  RNG Rng(60606);
  std::vector<PauliString> Tails(3);
  Tails[0].setOp(2, PauliOpKind::X); // butterfly tail
  Tails[0].setOp(0, PauliOpKind::Z);
  Tails[1].setOp(1, PauliOpKind::Z); // diagonal tail
  // Tails[2] stays the identity (global-phase tail).
  for (size_t Cols : {size_t(1), size_t(3), size_t(8)}) {
    const auto Basis = randomBasis(N, Cols, Rng);
    std::vector<CVector> Targets;
    for (size_t C = 0; C < Cols; ++C)
      Targets.push_back(randomState(N, Rng));
    const auto Pre = mixedSchedule(N, Rng);
    for (const kernels::Ops *Tier : kernels::availableOps()) {
      kernels::selectTierForTesting(*Tier);
      for (const PauliString &Tail : Tails) {
        const double Theta = 0.31;
        StatePanel A(N, Basis), B(N, Basis);
        for (unsigned I = 0; I < 4; ++I) {
          A.applyPauliExpAll(Pre[I].first, Pre[I].second);
          B.applyPauliExpAll(Pre[I].first, Pre[I].second);
        }
        A.applyPauliExpAll(Tail, Theta);
        std::vector<Complex> Unfused(Cols);
        for (size_t C = 0; C < Cols; ++C)
          Unfused[C] = A.overlapWith(Targets[C], C);
        TargetPanel Packed(Targets.data(), Cols, B.laneStride());
        std::vector<Complex> Fused(Cols);
        B.applyPauliExpAllFused(Tail, Theta, Packed, Fused.data());
        ASSERT_TRUE(panelsBitIdentical(A, B))
            << "tier " << Tier->Name << ", " << Cols << " columns";
        for (size_t C = 0; C < Cols; ++C) {
          ASSERT_EQ(serial::doubleBits(Unfused[C].real()),
                    serial::doubleBits(Fused[C].real()))
              << "tier " << Tier->Name << ", column " << C;
          ASSERT_EQ(serial::doubleBits(Unfused[C].imag()),
                    serial::doubleBits(Fused[C].imag()))
              << "tier " << Tier->Name << ", column " << C;
        }
      }
    }
    kernels::selectAuto();
  }
}

// The FP32 fused tail holds the same contract among FP32 implementations:
// fused == unfused (overlaps accumulate in double either way), and every
// tier == scalar, bit for bit.
TEST(KernelBitIdentityTest, Fp32FusedOverlapMatchesUnfusedBitwise) {
  DispatchRestorer Restore;
  const unsigned N = 5;
  RNG Rng(70707);
  const size_t Cols = 5;
  const auto Basis = randomBasis(N, Cols, Rng);
  std::vector<CVector> Targets;
  for (size_t C = 0; C < Cols; ++C)
    Targets.push_back(randomState(N, Rng));
  const auto Pre = mixedSchedule(N, Rng);
  PauliString Tail;
  Tail.setOp(3, PauliOpKind::Y);
  Tail.setOp(1, PauliOpKind::X);
  auto evalFused = [&](const kernels::Ops &Tier, std::vector<Complex> &Out,
                       bool Fuse) {
    kernels::selectTierForTesting(Tier);
    StatePanelF32 Panel(N, Basis);
    for (unsigned I = 0; I < 6; ++I)
      Panel.applyPauliExpAll(Pre[I].first, Pre[I].second);
    Out.assign(Cols, Complex(0.0, 0.0));
    if (Fuse) {
      TargetPanel Packed(Targets.data(), Cols, Panel.laneStride());
      Panel.applyPauliExpAllFused(Tail, 0.41, Packed, Out.data());
    } else {
      Panel.applyPauliExpAll(Tail, 0.41);
      for (size_t C = 0; C < Cols; ++C)
        Out[C] = Panel.overlapWith(Targets[C], C);
    }
    kernels::selectAuto();
  };
  std::vector<Complex> ScalarUnfused;
  evalFused(kernels::scalarOps(), ScalarUnfused, /*Fuse=*/false);
  for (const kernels::Ops *Tier : kernels::availableOps()) {
    for (bool Fuse : {false, true}) {
      std::vector<Complex> Out;
      evalFused(*Tier, Out, Fuse);
      for (size_t C = 0; C < Cols; ++C) {
        ASSERT_EQ(serial::doubleBits(ScalarUnfused[C].real()),
                  serial::doubleBits(Out[C].real()))
            << "tier " << Tier->Name << ", fused=" << Fuse << ", column "
            << C;
        ASSERT_EQ(serial::doubleBits(ScalarUnfused[C].imag()),
                  serial::doubleBits(Out[C].imag()))
            << "tier " << Tier->Name << ", fused=" << Fuse << ", column "
            << C;
      }
    }
  }
}

// The FP32 interleaved walk (the width-1 fidelity block) is bit-identical
// to a width-1 FP32 panel column: both mirror the same scalar arithmetic,
// so the production mix of walk and panel blocks stays self-consistent.
TEST(KernelBitIdentityTest, Fp32WalkMatchesWidthOnePanelColumn) {
  const unsigned N = 6;
  RNG Rng(141414);
  const auto Sched = mixedSchedule(N, Rng);
  const uint64_t Basis = 23;
  StateVectorF32 Walk(N, Basis);
  StatePanelF32 Panel(N, std::vector<uint64_t>{Basis});
  for (const auto &[P, Theta] : Sched) {
    Walk.applyPauliExp(P, Theta);
    Panel.applyPauliExpAll(P, Theta);
  }
  for (uint64_t X = 0; X < Walk.amplitudes().size(); ++X) {
    ASSERT_EQ(floatBits(Walk.amplitudes()[X].real()),
              floatBits(static_cast<float>(Panel.at(0, X).real())))
        << "amp " << X;
    ASSERT_EQ(floatBits(Walk.amplitudes()[X].imag()),
              floatBits(static_cast<float>(Panel.at(0, X).imag())))
        << "amp " << X;
  }
  // And the walk's target overlap runs the panel's ascending double chain.
  const CVector Target = randomState(N, Rng);
  EXPECT_EQ(serial::doubleBits(Walk.overlapWithTarget(Target).real()),
            serial::doubleBits(Panel.overlapWith(Target, 0).real()));
  EXPECT_EQ(serial::doubleBits(Walk.overlapWithTarget(Target).imag()),
            serial::doubleBits(Panel.overlapWith(Target, 0).imag()));
}

// End to end: a 17-column fidelity evaluation (two fused panel blocks
// plus the width-1 walk tail) under live dispatch must reproduce a serial
// single-state replay bit for bit, for every EvalJobs fan-out.
TEST(KernelBitIdentityTest, FidelityWithFusedTailMatchesSerialReference) {
  Hamiltonian H = makeHeisenbergXXZ(6, 1.0, 0.8, 0.6, 0.3);
  const double T = 0.7;
  std::vector<ScheduledRotation> Schedule;
  for (const auto &Term : H.terms())
    Schedule.emplace_back(Term.String, Term.Coeff * T);
  FidelityEvaluator Eval(H, T, /*NumColumns=*/17, /*Seed=*/11);
  ASSERT_EQ(Eval.numColumns(), 17u);
  Complex Acc = 0.0;
  for (size_t C = 0; C < Eval.numColumns(); ++C) {
    StateVector SV(Eval.numQubits(), Eval.columns()[C]);
    for (const ScheduledRotation &Step : Schedule)
      SV.applyPauliExp(Step.String, Step.Tau);
    Acc += innerProduct(Eval.targets()[C], SV.amplitudes());
  }
  const double Ref = std::abs(Acc) / 17.0;
  EXPECT_EQ(serial::doubleBits(Ref),
            serial::doubleBits(Eval.fidelity(Schedule, 1)));
  EXPECT_EQ(serial::doubleBits(Ref),
            serial::doubleBits(Eval.fidelity(Schedule, 4)));
}

// Satellite: amplitude storage is 64-byte aligned everywhere the kernels
// load from — interleaved CVectors and both panel planes — and the panel
// stride honors the lane-multiple contract.
TEST(AlignmentTest, AmplitudeStorageIs64ByteAligned) {
  CVector V(37);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(V.data()) % 64, 0u);
  StateVector SV(6, 11);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(SV.amplitudes().data()) % 64, 0u);
  for (size_t Cols : {size_t(1), size_t(5), size_t(8), size_t(9)}) {
    StatePanel P(4, std::vector<uint64_t>(Cols, 0));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P.realPlane()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P.imagPlane()) % 64, 0u);
    EXPECT_EQ(P.laneStride() % StatePanel::LaneMultiple, 0u);
    EXPECT_GE(P.laneStride(), Cols);
    StatePanelF32 Q(4, std::vector<uint64_t>(Cols, 0));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Q.realPlane()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Q.imagPlane()) % 64, 0u);
  }
}
