//===- tests/StoreTest.cpp - Tiered ArtifactStore contracts -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contracts of the unified caching layer:
//   * the memory tier is a size-accounted LRU: entries are charged their
//     codec-reported bytes, eviction follows recency exactly, and the
//     counters reconcile with the charges,
//   * lookups are single-flight: concurrent get() calls for one key
//     perform one computation,
//   * every artifact type (component matrix, alias bundle, fidelity
//     columns) round-trips through the disk tier bit-exactly,
//   * corruption of any artifact file falls back to recompute — and heals
//     the file — for every type,
//   * a capped store produces bit-identical results to an unbounded one
//     (evictions only ever cost recomputes),
//   * cache directories are validated up front (a file where a directory
//     should be, an unwritable parent).
//
//===----------------------------------------------------------------------===//

#include "service/SimulationService.h"
#include "store/Codecs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace marqsim;

namespace {

/// A blob with an explicit size, for exercising the LRU accounting
/// without dragging real artifacts in.
struct Blob {
  std::string Payload;
};

ArtifactCodec<Blob> blobCodec() {
  ArtifactCodec<Blob> Codec;
  Codec.Size = [](const Blob &B) { return B.Payload.size(); };
  return Codec;
}

ArtifactKey blobKey(const std::string &Id) {
  return {ArtifactType::ComponentMatrix, Id};
}

/// A small strongly-interacting Hamiltonian (the ServiceTest operator).
Hamiltonian testHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"},
                             {0.2, "XYYZ"}});
}

/// A sampling spec with fidelity columns, so a run touches all three
/// artifact types.
TaskSpec testSpec() {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(testHamiltonian());
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.5;
  Spec.Epsilon = 0.05;
  Spec.Shots = 5;
  Spec.Seed = 31337;
  Spec.Evaluate.FidelityColumns = 4;
  return Spec;
}

std::string freshDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// The one cache file with extension \p Ext under \p Dir.
std::filesystem::path onlyFile(const std::string &Dir,
                               const std::string &Ext) {
  std::filesystem::path Found;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == Ext) {
      EXPECT_TRUE(Found.empty()) << "more than one " << Ext << " file";
      Found = Entry.path();
    }
  EXPECT_FALSE(Found.empty()) << "no " << Ext << " file in " << Dir;
  return Found;
}

std::string readAll(const std::filesystem::path &P) {
  std::ifstream In(P);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

/// Flips one hex character somewhere inside the payload (after the first
/// newline, clear of the magic header), leaving the checksum stale.
void flipOneChar(const std::filesystem::path &P) {
  std::string Text = readAll(P);
  size_t Pos = Text.find('\n') + 3;
  ASSERT_LT(Pos, Text.size());
  Text[Pos] = Text[Pos] == '0' ? '1' : '0';
  std::ofstream(P) << Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// Memory tier: LRU order and byte accounting
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, LruEvictsLeastRecentlyUsedAndAccountsBytes) {
  ArtifactStore Store({/*CacheDir=*/"", /*MemoryLimitBytes=*/100});
  ArtifactCodec<Blob> Codec = blobCodec();
  auto Put = [&](const std::string &Id, size_t Bytes) {
    return Store.get<Blob>(blobKey(Id), Codec,
                           [&] { return Blob{std::string(Bytes, 'x')}; });
  };

  Put("a", 40);
  Put("b", 40);
  EXPECT_EQ(Store.bytesInUse(), 80u);
  EXPECT_EQ(Store.stats().Evictions, 0u);

  // Touch "a": it becomes most recent, so "b" is now the LRU victim.
  Put("a", 40);
  EXPECT_EQ(Store.stats().MemoryHits, 1u);

  // 120 > 100: exactly one eviction ("b"), and the books balance.
  Put("c", 40);
  ArtifactStore::Stats S = Store.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.EvictedBytes, 40u);
  EXPECT_EQ(S.BytesInUse, 80u);
  EXPECT_EQ(S.PeakBytes, 120u);

  // "a" survived (it was touched), "b" did not and must recompute.
  Put("a", 40);
  EXPECT_EQ(Store.stats().MemoryHits, 2u);
  Put("b", 40);
  EXPECT_EQ(Store.stats().Computes, 4u) << "evicted entry must recompute";
}

TEST(ArtifactStoreTest, OversizedEntryOvershootsInsteadOfThrashing) {
  ArtifactStore Store({"", 10});
  ArtifactCodec<Blob> Codec = blobCodec();
  Store.get<Blob>(blobKey("big"), Codec,
                  [] { return Blob{std::string(50, 'x')}; });
  // The just-inserted entry is never evicted, even over budget.
  EXPECT_EQ(Store.bytesInUse(), 50u);
  EXPECT_EQ(Store.stats().Evictions, 0u);
  Store.get<Blob>(blobKey("big"), Codec,
                  [] { return Blob{std::string(50, 'x')}; });
  EXPECT_EQ(Store.stats().MemoryHits, 1u);
  // The next insertion evicts it.
  Store.get<Blob>(blobKey("small"), Codec,
                  [] { return Blob{std::string(4, 'x')}; });
  EXPECT_EQ(Store.stats().Evictions, 1u);
  EXPECT_EQ(Store.bytesInUse(), 4u);
}

TEST(ArtifactStoreTest, UnlimitedStoreNeverEvicts) {
  ArtifactStore Store({"", 0});
  ArtifactCodec<Blob> Codec = blobCodec();
  for (int I = 0; I < 32; ++I)
    Store.get<Blob>(blobKey("blob" + std::to_string(I)), Codec,
                    [] { return Blob{std::string(1024, 'x')}; });
  EXPECT_EQ(Store.stats().Evictions, 0u);
  EXPECT_EQ(Store.bytesInUse(), 32u * 1024u);
}

//===----------------------------------------------------------------------===//
// Single flight
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, ConcurrentGetsComputeOnce) {
  ArtifactStore Store({"", 0});
  ArtifactCodec<Blob> Codec = blobCodec();
  std::atomic<int> Computes{0};
  std::vector<std::thread> Threads;
  std::vector<std::shared_ptr<const Blob>> Results(8);
  for (size_t I = 0; I < Results.size(); ++I)
    Threads.emplace_back([&, I] {
      Results[I] = Store.get<Blob>(blobKey("contended"), Codec, [&] {
        Computes++;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return Blob{"value"};
      });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Computes.load(), 1) << "single-flight must hold under races";
  for (const auto &R : Results)
    EXPECT_EQ(R.get(), Results[0].get()) << "all callers share one value";
  EXPECT_EQ(Store.stats().Computes, 1u);
  EXPECT_EQ(Store.stats().MemoryHits, Results.size() - 1);
}

//===----------------------------------------------------------------------===//
// Disk tier: per-type round trips and corruption fallbacks
//===----------------------------------------------------------------------===//

TEST(StoreCodecTest, MatrixBodyRoundTripsBitExactly) {
  TransitionMatrix P(3);
  // Values with no short decimal representation: only a bit-pattern
  // round trip reproduces them.
  double V = 1.0 / 3.0;
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 3; ++J)
      P.at(I, J) = V = V * 0.7 + 0.01 * double(I + J);
  std::string Body = store::encodeMatrixBody(store::AliasMagic, P);
  std::optional<TransitionMatrix> Back =
      store::decodeMatrixBody(store::AliasMagic, 3, Body);
  ASSERT_TRUE(Back);
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 3; ++J)
      EXPECT_EQ(P.at(I, J), Back->at(I, J)); // exact, not NEAR
  // Wrong magic and stale dimension are both rejected.
  EXPECT_FALSE(store::decodeMatrixBody(store::MatrixMagic, 3, Body));
  EXPECT_FALSE(store::decodeMatrixBody(store::AliasMagic, 4, Body));
  EXPECT_FALSE(store::decodeMatrixBody(store::AliasMagic, 3, Body + "junk"));
}

TEST(StoreCodecTest, FidelityBodyRoundTripsBitExactly) {
  Hamiltonian H = testHamiltonian();
  FidelityEvaluator E(H, 0.37, 5, 11);
  std::string Body = store::encodeFidelityBody(E);
  std::optional<FidelityEvaluator> Back =
      store::decodeFidelityBody(H.numQubits(), 5, Body);
  ASSERT_TRUE(Back);
  ASSERT_EQ(Back->numColumns(), E.numColumns());
  EXPECT_EQ(Back->columns(), E.columns());
  for (size_t C = 0; C < E.numColumns(); ++C) {
    ASSERT_EQ(Back->targets()[C].size(), E.targets()[C].size());
    for (size_t I = 0; I < E.targets()[C].size(); ++I) {
      EXPECT_EQ(E.targets()[C][I].real(), Back->targets()[C][I].real());
      EXPECT_EQ(E.targets()[C][I].imag(), Back->targets()[C][I].imag());
    }
  }
  // Stale shapes are rejected.
  EXPECT_FALSE(store::decodeFidelityBody(H.numQubits(), 4, Body));
  EXPECT_FALSE(store::decodeFidelityBody(H.numQubits() + 1, 5, Body));
}

TEST(StoreServiceTest, AllArtifactTypesPersistAndReplayBitIdentically) {
  std::string Dir = freshDir("store_all_types");
  ServiceOptions Options;
  Options.CacheDir = Dir;
  TaskSpec Spec = testSpec();

  std::optional<TaskResult> Cold;
  {
    SimulationService Service(Options);
    Cold = Service.run(Spec);
    ASSERT_TRUE(Cold);
    EXPECT_EQ(Service.stats().GCSolveMisses, 1u);
    EXPECT_EQ(Service.stats().EvaluatorMisses, 1u);
  }
  // One file per artifact type landed on disk.
  onlyFile(Dir, ".mat");
  onlyFile(Dir, ".alias");
  onlyFile(Dir, ".fid");

  // A fresh service replays the run entirely from disk: no solve, no
  // combine, no column evolution — and every number is bit-identical.
  SimulationService Warm(Options);
  std::optional<TaskResult> R = Warm.run(Spec);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Batch.batchHash(), Cold->Batch.batchHash());
  ASSERT_EQ(R->ShotFidelities.size(), Cold->ShotFidelities.size());
  for (size_t I = 0; I < R->ShotFidelities.size(); ++I)
    EXPECT_EQ(R->ShotFidelities[I], Cold->ShotFidelities[I])
        << "fidelity of shot " << I;
  EXPECT_EQ(R->Fidelity.Mean, Cold->Fidelity.Mean);
  EXPECT_EQ(R->Fidelity.Std, Cold->Fidelity.Std);
  CacheStats S = Warm.stats();
  EXPECT_EQ(S.GCSolveMisses, 0u);
  EXPECT_EQ(S.EvaluatorMisses, 0u);
  EXPECT_EQ(S.DiskLoads, 2u) << "alias bundle + fidelity columns";
  EXPECT_EQ(Warm.storeStats().DiskHits, 2u);
}

TEST(StoreServiceTest, CorruptionFallsBackToRecomputeForEveryType) {
  std::string Dir = freshDir("store_corrupt_types");
  ServiceOptions Options;
  Options.CacheDir = Dir;
  TaskSpec Spec = testSpec();

  std::optional<TaskResult> Clean;
  {
    SimulationService Service(Options);
    Clean = Service.run(Spec);
    ASSERT_TRUE(Clean);
  }
  std::filesystem::path Mat = onlyFile(Dir, ".mat");
  std::filesystem::path Alias = onlyFile(Dir, ".alias");
  std::filesystem::path Fid = onlyFile(Dir, ".fid");
  const std::string HealthyMat = readAll(Mat);
  const std::string HealthyAlias = readAll(Alias);
  const std::string HealthyFid = readAll(Fid);

  auto RunAndExpectClean = [&](SimulationService &Service) {
    std::optional<TaskResult> R = Service.run(Spec);
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Batch.batchHash(), Clean->Batch.batchHash());
    for (size_t I = 0; I < R->ShotFidelities.size(); ++I)
      EXPECT_EQ(R->ShotFidelities[I], Clean->ShotFidelities[I]);
  };

  // Fidelity columns flipped: the evaluator rebuilds (the graph side
  // still disk-hits) and the file heals byte-identically.
  flipOneChar(Fid);
  {
    SimulationService Service(Options);
    RunAndExpectClean(Service);
    EXPECT_EQ(Service.stats().EvaluatorMisses, 1u);
    EXPECT_EQ(Service.stats().GCSolveMisses, 0u);
  }
  EXPECT_EQ(readAll(Fid), HealthyFid);

  // Alias bundle flipped: the bundle recomputes, but the component tier
  // below it still serves the solve from the intact .mat file.
  flipOneChar(Alias);
  {
    SimulationService Service(Options);
    RunAndExpectClean(Service);
    CacheStats S = Service.stats();
    EXPECT_EQ(S.GraphMisses, 1u);
    EXPECT_EQ(S.GCSolveMisses, 0u) << "component tier must cover the solve";
    EXPECT_EQ(S.GCSolveHits, 1u);
  }
  EXPECT_EQ(readAll(Alias), HealthyAlias);

  // Component flipped while the bundle is intact: the bundle tier masks
  // it (that is the point of persisting the combined matrix) — no solve.
  flipOneChar(Mat);
  {
    SimulationService Service(Options);
    RunAndExpectClean(Service);
    EXPECT_EQ(Service.stats().GCSolveMisses, 0u);
  }

  // Both matrix tiers damaged: full re-solve, both files heal.
  flipOneChar(Alias); // Mat is still corrupt from above
  {
    SimulationService Service(Options);
    RunAndExpectClean(Service);
    EXPECT_EQ(Service.stats().GCSolveMisses, 1u);
  }
  EXPECT_EQ(readAll(Mat), HealthyMat);
  EXPECT_EQ(readAll(Alias), HealthyAlias);
}

//===----------------------------------------------------------------------===//
// Capped service: evictions never change results
//===----------------------------------------------------------------------===//

TEST(StoreServiceTest, CappedStoreIsBitIdenticalToUnlimited) {
  // A sweep over several mixes under a budget small enough that every
  // artifact evicts the previous one. The batches must match the
  // unbounded service bit for bit; only the recompute counters differ.
  const ChannelMix Mixes[] = {{1.0, 0.0, 0.0},
                              {0.4, 0.6, 0.0},
                              {0.2, 0.8, 0.0},
                              {0.4, 0.3, 0.3}};
  SimulationService Unlimited;
  ServiceOptions Capped;
  Capped.CacheLimitBytes = 1; // every insertion evicts the rest
  SimulationService Tiny(Capped);

  for (const ChannelMix &Mix : Mixes) {
    TaskSpec Spec = testSpec();
    Spec.Mix = Mix;
    std::optional<TaskResult> A = Unlimited.run(Spec);
    std::optional<TaskResult> B = Tiny.run(Spec);
    ASSERT_TRUE(A && B);
    EXPECT_EQ(A->Batch.batchHash(), B->Batch.batchHash());
    ASSERT_EQ(A->ShotFidelities.size(), B->ShotFidelities.size());
    for (size_t I = 0; I < A->ShotFidelities.size(); ++I)
      EXPECT_EQ(A->ShotFidelities[I], B->ShotFidelities[I]);
  }
  EXPECT_EQ(Unlimited.storeStats().Evictions, 0u);
  EXPECT_GT(Tiny.storeStats().Evictions, 0u);
  // The capped store recomputed what it evicted — more solves, same bits.
  EXPECT_GT(Tiny.stats().matrixMisses(), Unlimited.stats().matrixMisses());
}

TEST(StoreServiceTest, CappedStoreStillSolvesOnceWithDiskTier) {
  // The one-solve-per-Hamiltonian contract survives a tiny memory budget
  // as long as the disk tier backs it: evicted artifacts reload, they do
  // not re-solve.
  std::string Dir = freshDir("store_capped_disk");
  ServiceOptions Options;
  Options.CacheDir = Dir;
  Options.CacheLimitBytes = 1;
  SimulationService Service(Options);
  const ChannelMix Mixes[] = {{0.4, 0.6, 0.0},
                              {0.2, 0.8, 0.0},
                              {0.6, 0.4, 0.0}};
  for (const ChannelMix &Mix : Mixes)
    for (double Eps : {0.1, 0.05}) {
      TaskSpec Spec = testSpec();
      Spec.Mix = Mix;
      Spec.Epsilon = Eps;
      ASSERT_TRUE(Service.run(Spec));
    }
  EXPECT_EQ(Service.stats().GCSolveMisses, 1u)
      << "evictions must reload from disk, not re-solve";
  EXPECT_GT(Service.storeStats().Evictions, 0u);
  EXPECT_GT(Service.storeStats().DiskHits, 0u);
}

//===----------------------------------------------------------------------===//
// Cache-directory validation
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, ValidateCacheDirRejectsBadPaths) {
  std::string Error;
  EXPECT_TRUE(ArtifactStore::validateCacheDir("", &Error)) << "empty = off";

  // A fresh nested path is created on demand.
  std::string Fresh = freshDir("store_validate") + "/nested/cache";
  EXPECT_TRUE(ArtifactStore::validateCacheDir(Fresh, &Error)) << Error;
  EXPECT_TRUE(std::filesystem::is_directory(Fresh));

  // A regular file where the directory should be.
  std::string FilePath = testing::TempDir() + "store_validate_file";
  std::ofstream(FilePath) << "not a directory";
  EXPECT_FALSE(ArtifactStore::validateCacheDir(FilePath, &Error));
  EXPECT_NE(Error.find("not a directory"), std::string::npos) << Error;

  // A path whose parent is that file can never be created.
  EXPECT_FALSE(
      ArtifactStore::validateCacheDir(FilePath + "/below", &Error));
  EXPECT_NE(Error.find("cannot create"), std::string::npos) << Error;
}
