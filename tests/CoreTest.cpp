//===- tests/CoreTest.cpp - MarQSim core compiler tests ------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests the paper's contribution end to end against the numeric fixtures
// printed in the paper itself (Examples 4.1, 5.1, 5.2, 5.3) plus
// property-style sweeps of the Theorem 4.1 / 5.1 / 5.2 conditions over
// randomized Hamiltonians.
//
//===----------------------------------------------------------------------===//

#include "core/Baselines.h"
#include "core/CNOTCountOracle.h"
#include "core/Compiler.h"
#include "core/Emitter.h"
#include "core/HTTGraph.h"
#include "core/TransitionBuilders.h"
#include "hamgen/Models.h"
#include "linalg/Expm.h"
#include "sim/Fidelity.h"
#include "sim/StateVector.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

namespace {

/// H = 1.0 IIIZ + 0.5 IIZZ + 0.4 XXYY + 0.1 ZXZY (paper Example 4.1).
Hamiltonian example41() {
  return Hamiltonian::parse(
      {{1.0, "IIIZ"}, {0.5, "IIZZ"}, {0.4, "XXYY"}, {0.1, "ZXZY"}});
}

/// H of paper Example 5.3 (five terms on five qubits).
Hamiltonian example53() {
  return Hamiltonian::parse({{1.0, "IIIZY"},
                             {1.0, "XXIII"},
                             {0.7, "ZXZYI"},
                             {0.5, "IIZZX"},
                             {0.3, "XXYYZ"}});
}

/// Dense unitary of a schedule, product of analytic exponentials.
Matrix scheduleUnitary(const std::vector<ScheduledRotation> &Schedule,
                       unsigned N) {
  Matrix U = Matrix::identity(size_t(1) << N);
  for (const auto &Step : Schedule)
    U = expm(Step.String.toMatrix(N) * Complex(0, Step.Tau)) * U;
  return U;
}

} // namespace

//===----------------------------------------------------------------------===//
// HTT graph IR
//===----------------------------------------------------------------------===//

TEST(HTTGraphTest, QDriftGraphIsValid) {
  HTTGraph G = HTTGraph::withQDriftMatrix(example41());
  EXPECT_EQ(G.numStates(), 4u);
  EXPECT_TRUE(G.isStronglyConnected());
  EXPECT_TRUE(G.preservesStationary());
  EXPECT_TRUE(G.isValidForCompilation());
  // Complete graph including self-edges.
  EXPECT_EQ(G.numEdges(), 16u);
}

TEST(HTTGraphTest, InvalidMatrixDetected) {
  Hamiltonian H = example41();
  // The identity chain preserves pi but is not strongly connected.
  TransitionMatrix I(4);
  for (size_t K = 0; K < 4; ++K)
    I.at(K, K) = 1.0;
  HTTGraph G(H, I);
  EXPECT_TRUE(G.preservesStationary());
  EXPECT_FALSE(G.isStronglyConnected());
  EXPECT_FALSE(G.isValidForCompilation());
}

//===----------------------------------------------------------------------===//
// CNOT-count oracle
//===----------------------------------------------------------------------===//

TEST(CNOTCountOracleTest, IdenticalStringsMergeForFree) {
  auto P = *PauliString::parse("XXYY");
  EXPECT_EQ(cnotCountBetween(P, P), 0u);
}

TEST(CNOTCountOracleTest, Figure6Pair) {
  // ZZZZ vs XZXZ: 3 + 3 ladder CNOTs, two matched Z qubits cancel one pair.
  auto A = *PauliString::parse("ZZZZ");
  auto B = *PauliString::parse("XZXZ");
  EXPECT_EQ(cnotCountBetween(A, B), 4u);
  EXPECT_EQ(cnotCountBetween(B, A), 4u);
}

TEST(CNOTCountOracleTest, DisjointStringsNoCancellation) {
  auto A = *PauliString::parse("ZZII");
  auto B = *PauliString::parse("IIXX");
  EXPECT_EQ(cnotCountBetween(A, B), 2u);
}

TEST(CNOTCountOracleTest, SingleQubitStringsAreFree) {
  auto A = *PauliString::parse("IZ");
  auto B = *PauliString::parse("XI");
  EXPECT_EQ(cnotCountBetween(A, B), 0u);
}

TEST(CNOTCountOracleTest, Example41Table) {
  Hamiltonian H = example41();
  auto Table = cnotCostTable(H);
  // Worked out by hand in DESIGN.md.
  EXPECT_EQ(Table[0][1], 1u);
  EXPECT_EQ(Table[0][2], 3u);
  EXPECT_EQ(Table[0][3], 3u);
  EXPECT_EQ(Table[1][2], 4u);
  EXPECT_EQ(Table[1][3], 4u);
  EXPECT_EQ(Table[2][3], 4u);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Table[I][I], 0u);
    for (size_t J = 0; J < 4; ++J)
      EXPECT_EQ(Table[I][J], Table[J][I]);
  }
}

//===----------------------------------------------------------------------===//
// Transition matrix builders vs the paper's printed matrices
//===----------------------------------------------------------------------===//

TEST(TransitionBuildersTest, Example41QDriftMatrix) {
  TransitionMatrix Pqd = buildQDrift(example41());
  const double Expected[4] = {0.5, 0.25, 0.2, 0.05};
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J)
      EXPECT_NEAR(Pqd.at(I, J), Expected[J], 1e-12);
}

TEST(TransitionBuildersTest, Example51GateCancellationMatrix) {
  // Equation (14) of the paper.
  TransitionMatrix Pgc = buildGateCancellation(example41());
  const double Expected[4][4] = {{0.0, 0.5, 0.4, 0.1},
                                 {1.0, 0.0, 0.0, 0.0},
                                 {1.0, 0.0, 0.0, 0.0},
                                 {1.0, 0.0, 0.0, 0.0}};
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J)
      EXPECT_NEAR(Pgc.at(I, J), Expected[I][J], 1e-6)
          << "entry (" << I << "," << J << ")";
  // And the matrix satisfies the Theorem 5.1 stationarity condition.
  EXPECT_TRUE(Pgc.isRowStochastic(1e-9));
  EXPECT_TRUE(
      Pgc.preservesDistribution(example41().stationaryDistribution(), 1e-6));
}

TEST(TransitionBuildersTest, Example52CombinedMatrix) {
  // Equation (15): P = 0.4 Pqd + 0.6 Pgc.
  Hamiltonian H = example41();
  TransitionMatrix P = combineWithQDrift(H, buildGateCancellation(H), 0.4);
  const double Expected[4][4] = {{0.2, 0.4, 0.32, 0.08},
                                 {0.8, 0.1, 0.08, 0.02},
                                 {0.8, 0.1, 0.08, 0.02},
                                 {0.8, 0.1, 0.08, 0.02}};
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J)
      EXPECT_NEAR(P.at(I, J), Expected[I][J], 1e-6);
  EXPECT_TRUE(P.isStronglyConnected());
  EXPECT_TRUE(P.preservesDistribution(H.stationaryDistribution(), 1e-6));
}

TEST(TransitionBuildersTest, Example53Spectra) {
  // Example 5.3: Pqd has spectrum {1, 0, 0, 0, 0}; the combined matrix has
  // non-trivial secondary eigenvalues (the paper reports 0.46, 0.46, 0.25).
  Hamiltonian H = example53();
  TransitionMatrix Pqd = buildQDrift(H);
  auto QdEigs = Pqd.spectrum();
  EXPECT_NEAR(std::abs(QdEigs[0]), 1.0, 1e-9);
  for (size_t K = 1; K < QdEigs.size(); ++K)
    EXPECT_NEAR(std::abs(QdEigs[K]), 0.0, 1e-9);

  TransitionMatrix P = combineWithQDrift(H, buildGateCancellation(H), 0.4);
  auto Eigs = P.spectrum();
  EXPECT_NEAR(std::abs(Eigs[0]), 1.0, 1e-8);
  // Secondary spectrum is non-trivial and below the strong-connectivity
  // bound |lambda_2| <= 1 - theta_qd contribution.
  EXPECT_GT(std::abs(Eigs[1]), 0.05);
  EXPECT_LT(std::abs(Eigs[1]), 0.999);
}

TEST(TransitionBuildersTest, GcIsOptimalAmongFeasibleCompetitors) {
  // Proposition 5.1 + MCFP optimality: Pgc minimizes the expected CNOTs per
  // transition over all stationary-preserving matrices with zero diagonal.
  // Any other matrix produced by the same flow skeleton under *different*
  // costs (perturbed costs, commutation costs) is feasible, so its true
  // expected cost can only be higher.
  RNG Rng(101);
  for (int Trial = 0; Trial < 6; ++Trial) {
    Hamiltonian H = makeRandomHamiltonian(5, 12, Rng);
    std::vector<double> Pi = H.stationaryDistribution();
    double CostGc =
        expectedTransitionCNOTs(H, buildGateCancellation(H), Pi);
    RNG PerturbRng(200 + Trial);
    double CostPerturbed = expectedTransitionCNOTs(
        H, buildRandomPerturbation(H, 1, PerturbRng), Pi);
    double CostCommute =
        expectedTransitionCNOTs(H, buildCommutationGrouping(H), Pi);
    EXPECT_LE(CostGc, CostPerturbed + 1e-6);
    EXPECT_LE(CostGc, CostCommute + 1e-6);
  }
}

TEST(TransitionBuildersTest, GcBeatsQDriftOnManyTermHamiltonians) {
  // Not a theorem in general (qDrift's self-loops merge for free while the
  // MCFP excludes the diagonal), but with many terms the repeat
  // probability sum(pi^2) is negligible and the matched-pair savings
  // dominate — this is the regime of every paper benchmark.
  RNG Rng(113);
  Hamiltonian H = makeRandomHamiltonian(6, 40, Rng);
  std::vector<double> Pi = H.stationaryDistribution();
  double CostQd = expectedTransitionCNOTs(H, buildQDrift(H), Pi);
  double CostGc = expectedTransitionCNOTs(H, buildGateCancellation(H), Pi);
  EXPECT_LT(CostGc, CostQd);
}

TEST(TransitionBuildersTest, RandomPerturbationPreservesStationarity) {
  Hamiltonian H = example53();
  RNG Rng(102);
  TransitionMatrix Prp = buildRandomPerturbation(H, 8, Rng);
  EXPECT_TRUE(Prp.isRowStochastic(1e-9));
  EXPECT_TRUE(Prp.preservesDistribution(H.stationaryDistribution(), 1e-6));
}

TEST(TransitionBuildersTest, PerturbationFlattensSpectrum) {
  // Section 5.4 / Fig. 15: swapping half the Pgc share for Prp lowers the
  // secondary eigenvalue magnitude (faster mixing, smaller variance).
  RNG Rng(111);
  Hamiltonian H = makeRandomHamiltonian(6, 16, Rng);
  TransitionMatrix Pqd = buildQDrift(H);
  TransitionMatrix Pgc = buildGateCancellation(H);
  RNG PerturbRng(112);
  TransitionMatrix Prp = buildRandomPerturbation(H, 12, PerturbRng);
  TransitionMatrix Pure =
      TransitionMatrix::combine({&Pqd, &Pgc}, {0.4, 0.6});
  TransitionMatrix Perturbed =
      TransitionMatrix::combine({&Pqd, &Pgc, &Prp}, {0.4, 0.3, 0.3});
  EXPECT_LE(Perturbed.secondEigenvalueMagnitude(),
            Pure.secondEigenvalueMagnitude() + 0.02);
}

TEST(TransitionBuildersTest, CommutationGroupingValid) {
  Hamiltonian H = example53();
  TransitionMatrix Pcg = buildCommutationGrouping(H);
  EXPECT_TRUE(Pcg.isRowStochastic(1e-9));
  EXPECT_TRUE(Pcg.preservesDistribution(H.stationaryDistribution(), 1e-6));
}

TEST(TransitionBuildersTest, ConfigMatrixWeightsAndValidity) {
  Hamiltonian H = example53();
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.3, 0.3, /*Rounds=*/4);
  HTTGraph G(H, P);
  EXPECT_TRUE(G.isValidForCompilation());
}

struct BuilderSweepCase {
  unsigned Qubits;
  size_t Terms;
  uint64_t Seed;
};

class TheoremConditionsSweep
    : public ::testing::TestWithParam<BuilderSweepCase> {};

TEST_P(TheoremConditionsSweep, GcMatrixSatisfiesTheoremConditions) {
  const auto &Case = GetParam();
  RNG Rng(Case.Seed);
  Hamiltonian H =
      makeRandomHamiltonian(Case.Qubits, Case.Terms, Rng).splitLargeTerms();
  TransitionMatrix Pgc = buildGateCancellation(H);
  std::vector<double> Pi = H.stationaryDistribution();
  // Theorem 5.1: stationarity enforced by the flow capacities.
  EXPECT_TRUE(Pgc.isRowStochastic(1e-7));
  EXPECT_TRUE(Pgc.preservesDistribution(Pi, 1e-6));
  // Theorem 5.2 + Corollary 4.1: mixing with Pqd restores connectivity.
  TransitionMatrix Mixed = combineWithQDrift(H, Pgc, 0.4);
  EXPECT_TRUE(Mixed.isStronglyConnected());
  EXPECT_TRUE(Mixed.preservesDistribution(Pi, 1e-6));
  // Spectra: leading eigenvalue 1, all magnitudes <= 1.
  auto Eigs = Mixed.spectrum();
  EXPECT_NEAR(std::abs(Eigs[0]), 1.0, 1e-7);
  for (const auto &E : Eigs)
    EXPECT_LE(std::abs(E), 1.0 + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    RandomHamiltonians, TheoremConditionsSweep,
    ::testing::Values(BuilderSweepCase{3, 4, 1}, BuilderSweepCase{4, 8, 2},
                      BuilderSweepCase{5, 16, 3}, BuilderSweepCase{6, 24, 4},
                      BuilderSweepCase{4, 6, 5}, BuilderSweepCase{6, 32, 6},
                      BuilderSweepCase{5, 10, 7}, BuilderSweepCase{7, 20, 8}));

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

TEST(EmitterTest, SingleSnippetMatchesDirectSynthesis) {
  PauliString P = *PauliString::parse("XYZ");
  std::vector<ScheduledRotation> Schedule = {{P, 0.4}};
  Circuit C = emitSchedule(Schedule, 3);
  Matrix U = circuitUnitary(C);
  Matrix Expected = expm(P.toMatrix(3) * Complex(0, 0.4));
  EXPECT_NEAR(U.maxAbsDiff(Expected), 0.0, 1e-10);
}

TEST(EmitterTest, MatchedPairRealizesOracleCount) {
  // With root continuity the CNOTs between the two Rz gates equal the
  // oracle's count.
  auto A = *PauliString::parse("ZZZZ");
  auto B = *PauliString::parse("XZXZ");
  std::vector<ScheduledRotation> Schedule = {{A, 0.3}, {B, 0.5}};
  EmitStats Stats;
  Circuit C = emitSchedule(Schedule, 4, {}, &Stats);
  // Count CNOTs between the two Rz gates.
  size_t FirstRz = 0, SecondRz = 0;
  size_t Seen = 0;
  for (size_t I = 0; I < C.size(); ++I)
    if (C.gate(I).Kind == GateKind::Rz) {
      (Seen == 0 ? FirstRz : SecondRz) = I;
      ++Seen;
    }
  ASSERT_EQ(Seen, 2u);
  size_t Between = 0;
  for (size_t I = FirstRz + 1; I < SecondRz; ++I)
    if (C.gate(I).isCNOT())
      ++Between;
  EXPECT_EQ(Between, cnotCountBetween(A, B));
  EXPECT_GT(Stats.CancelledCNOTs, 0u);

  // Unitary equals the analytic product.
  Matrix U = circuitUnitary(C);
  EXPECT_NEAR(U.maxAbsDiff(scheduleUnitary(Schedule, 4)), 0.0, 1e-10);
}

TEST(EmitterTest, RepeatedStringFoldsIntoOneRotation) {
  auto P = *PauliString::parse("XY");
  std::vector<ScheduledRotation> Schedule = {{P, 0.3}, {P, 0.2}};
  Circuit C = emitSchedule(Schedule, 2);
  size_t RzCount = 0;
  for (const Gate &G : C.gates())
    RzCount += G.Kind == GateKind::Rz;
  EXPECT_EQ(RzCount, 1u);
  Matrix U = circuitUnitary(C);
  Matrix Expected = expm(P.toMatrix(2) * Complex(0, 0.5));
  EXPECT_NEAR(U.maxAbsDiff(Expected), 0.0, 1e-10);
}

TEST(EmitterTest, CancellationNeverChangesUnitary) {
  RNG Rng(103);
  for (int Trial = 0; Trial < 15; ++Trial) {
    const unsigned N = 3;
    Hamiltonian H = makeRandomHamiltonian(N, 5, Rng);
    std::vector<ScheduledRotation> Schedule;
    for (int K = 0; K < 8; ++K) {
      size_t Index = Rng.uniformInt(H.numTerms());
      Schedule.emplace_back(H.term(Index).String, Rng.uniform(-0.5, 0.5));
    }
    EmitOptions NoCancel;
    NoCancel.CrossCancellation = false;
    Circuit Plain = emitSchedule(Schedule, N, NoCancel);
    Circuit Fancy = emitSchedule(Schedule, N);
    EXPECT_LE(Fancy.counts().CNOTs, Plain.counts().CNOTs);
    EXPECT_LE(Fancy.counts().total(), Plain.counts().total());
    Matrix U1 = circuitUnitary(Plain);
    Matrix U2 = circuitUnitary(Fancy);
    Matrix Expected = scheduleUnitary(Schedule, N);
    ASSERT_NEAR(U1.maxAbsDiff(Expected), 0.0, 1e-9);
    ASSERT_NEAR(U2.maxAbsDiff(Expected), 0.0, 1e-9);
  }
}

struct EmitterSweepCase {
  unsigned Qubits;
  size_t Terms;
  size_t ScheduleLength;
  uint64_t Seed;
};

class EmitterPropertySweep
    : public ::testing::TestWithParam<EmitterSweepCase> {};

TEST_P(EmitterPropertySweep, UnitaryExactAndCountsBounded) {
  const auto &Case = GetParam();
  RNG Rng(Case.Seed);
  Hamiltonian H = makeRandomHamiltonian(Case.Qubits, Case.Terms, Rng);
  std::vector<ScheduledRotation> Schedule;
  for (size_t K = 0; K < Case.ScheduleLength; ++K)
    Schedule.emplace_back(H.term(Rng.uniformInt(H.numTerms())).String,
                          Rng.uniform(-0.4, 0.4));
  EmitOptions NoCancel;
  NoCancel.CrossCancellation = false;
  Circuit Plain = emitSchedule(Schedule, Case.Qubits, NoCancel);
  Circuit Fancy = emitSchedule(Schedule, Case.Qubits);
  // Cancellation never increases any gate count.
  EXPECT_LE(Fancy.counts().CNOTs, Plain.counts().CNOTs);
  EXPECT_LE(Fancy.counts().SingleQubit, Plain.counts().SingleQubit);
  // Both lowerings realize exactly the analytic product.
  Matrix Expected = scheduleUnitary(Schedule, Case.Qubits);
  ASSERT_NEAR(circuitUnitary(Plain).maxAbsDiff(Expected), 0.0, 1e-9);
  ASSERT_NEAR(circuitUnitary(Fancy).maxAbsDiff(Expected), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EmitterPropertySweep,
    ::testing::Values(EmitterSweepCase{2, 3, 6, 1},
                      EmitterSweepCase{3, 5, 10, 2},
                      EmitterSweepCase{4, 8, 12, 3},
                      EmitterSweepCase{4, 4, 20, 4},
                      EmitterSweepCase{5, 10, 14, 5},
                      EmitterSweepCase{5, 6, 8, 6},
                      EmitterSweepCase{3, 12, 24, 7},
                      EmitterSweepCase{2, 2, 16, 8}));

//===----------------------------------------------------------------------===//
// Compiler (Algorithm 1)
//===----------------------------------------------------------------------===//

TEST(CompilerTest, SampleCountFormula) {
  // N = ceil(2 lambda^2 t^2 / eps).
  EXPECT_EQ(qdriftSampleCount(2.0, 1.0, 0.1), 80u);
  EXPECT_EQ(qdriftSampleCount(1.0, 0.5, 0.05), 10u);
  EXPECT_EQ(qdriftSampleCount(0.1, 0.1, 10.0), 1u); // floor at one sample
}

TEST(CompilerTest, SequenceLengthAndScheduleConsistency) {
  Hamiltonian H = example41();
  HTTGraph G = HTTGraph::withQDriftMatrix(H);
  RNG Rng(104);
  CompilationResult R = compileBySampling(G, 0.5, 0.05, Rng);
  EXPECT_EQ(R.Sequence.size(), R.NumSamples);
  EXPECT_EQ(R.NumSamples, qdriftSampleCount(H.lambda(), 0.5, 0.05));
  // Total evolution weight: sum |tau| = N * lambda t / N = lambda t.
  double TotalTau = 0.0;
  for (const auto &Step : R.Schedule)
    TotalTau += std::fabs(Step.Tau);
  EXPECT_NEAR(TotalTau, H.lambda() * 0.5, 1e-9);
}

TEST(CompilerTest, DeterministicGivenSeed) {
  Hamiltonian H = example41();
  HTTGraph G = HTTGraph::withQDriftMatrix(H);
  RNG A(105), B(105);
  CompilationResult R1 = compileBySampling(G, 0.5, 0.05, A);
  CompilationResult R2 = compileBySampling(G, 0.5, 0.05, B);
  EXPECT_EQ(R1.Sequence, R2.Sequence);
  EXPECT_EQ(R1.Counts.CNOTs, R2.Counts.CNOTs);
}

TEST(CompilerTest, CompiledCircuitApproximatesEvolution) {
  // End-to-end Theorem 4.1 sanity: fidelity close to 1 for tight epsilon.
  Hamiltonian H = makeTransverseFieldIsing(3, 0.6, 0.4);
  double T = 0.5;
  HTTGraph G = HTTGraph::withQDriftMatrix(H);
  RNG Rng(106);
  CompilationResult R = compileBySampling(G, T, 0.01, Rng);
  FidelityEvaluator Eval(H, T, 8);
  double F = Eval.fidelity(R.Schedule);
  EXPECT_GT(F, 0.97);
  // The gate-level circuit agrees with the analytic schedule.
  EXPECT_NEAR(Eval.fidelityOfCircuit(R.Circ), F, 1e-9);
}

TEST(CompilerTest, NegativeCoefficientsGetNegativeTau) {
  Hamiltonian H = Hamiltonian::parse({{-0.8, "XX"}, {0.2, "ZI"}});
  HTTGraph G = HTTGraph::withQDriftMatrix(H);
  RNG Rng(107);
  CompilationResult R = compileBySampling(G, 0.4, 0.1, Rng);
  for (size_t K = 0; K < R.Sequence.size(); ++K) {
    // Every visit of the XX term must contribute negative tau.
    if (H.term(R.Sequence[K]).Coeff < 0)
      break;
  }
  // Aggregate check: fidelity is high only with correct signs.
  FidelityEvaluator Eval(H, 0.4, 4);
  EXPECT_GT(Eval.fidelity(R.Schedule), 0.97);
}

TEST(CompilerTest, CDFSamplerAblationProducesValidRuns) {
  Hamiltonian H = example41();
  HTTGraph G = HTTGraph::withQDriftMatrix(H);
  CompilationOptions Opts;
  Opts.UseCDFSampler = true;
  RNG Rng(108);
  CompilationResult R = compileBySampling(G, 0.5, 0.002, Rng, Opts);
  EXPECT_EQ(R.Sequence.size(), R.NumSamples);
  EXPECT_GE(R.NumSamples, 1000u);
  // Empirical distribution of visited terms approximates pi.
  std::vector<double> Pi = H.stationaryDistribution();
  std::vector<size_t> Counts(H.numTerms(), 0);
  for (size_t Index : R.Sequence)
    ++Counts[Index];
  for (size_t I = 0; I < H.numTerms(); ++I)
    EXPECT_NEAR(Counts[I] / double(R.NumSamples), Pi[I], 0.05);
}

//===----------------------------------------------------------------------===//
// Baselines
//===----------------------------------------------------------------------===//

TEST(BaselinesTest, OrderTermsVariants) {
  Hamiltonian H = example41();
  auto Given = orderTerms(H, TermOrderKind::Given);
  EXPECT_EQ(Given, (std::vector<size_t>{0, 1, 2, 3}));
  auto Mag = orderTerms(H, TermOrderKind::MagnitudeDescending);
  EXPECT_EQ(Mag.front(), 0u); // coefficient 1.0 first
  auto Lex = orderTerms(H, TermOrderKind::Lexicographic);
  EXPECT_EQ(Lex.size(), 4u);
  auto Greedy = orderTerms(H, TermOrderKind::GreedyMatched);
  EXPECT_EQ(Greedy.size(), 4u);
  // Greedy visits every term exactly once.
  std::vector<char> Seen(4, 0);
  for (size_t I : Greedy)
    Seen[I] = 1;
  for (char S : Seen)
    EXPECT_TRUE(S);
}

TEST(BaselinesTest, Trotter1ConvergesWithReps) {
  Hamiltonian H = makeHeisenbergXXZ(3, 1.0, 1.0, 0.6, 0.2);
  double T = 0.8;
  FidelityEvaluator Eval(H, T, 8);
  double FLow =
      Eval.fidelity(compileTrotter1(H, T, 2, TermOrderKind::Given).Schedule);
  double FHigh =
      Eval.fidelity(compileTrotter1(H, T, 32, TermOrderKind::Given).Schedule);
  EXPECT_GT(FHigh, FLow - 1e-9);
  EXPECT_GT(FHigh, 0.999);
}

TEST(BaselinesTest, Trotter2BeatsTrotter1AtEqualReps) {
  Hamiltonian H = makeHeisenbergXXZ(3, 1.0, 1.0, 0.6, 0.2);
  double T = 1.2;
  FidelityEvaluator Eval(H, T, 8);
  double F1 =
      Eval.fidelity(compileTrotter1(H, T, 3, TermOrderKind::Given).Schedule);
  double F2 =
      Eval.fidelity(compileTrotter2(H, T, 3, TermOrderKind::Given).Schedule);
  EXPECT_GE(F2, F1 - 1e-9);
}

TEST(BaselinesTest, RandomOrderTrotterIsCorrect) {
  Hamiltonian H = makeTransverseFieldIsing(3, 0.8, 0.5);
  double T = 0.6;
  RNG Rng(109);
  CompilationResult R = compileRandomOrderTrotter(H, T, 12, Rng);
  EXPECT_EQ(R.Sequence.size(), H.numTerms() * 12);
  FidelityEvaluator Eval(H, T, 8);
  EXPECT_GT(Eval.fidelity(R.Schedule), 0.995);
}

TEST(BaselinesTest, Suzuki4BeatsTrotter2AtEqualReps) {
  Hamiltonian H = makeHeisenbergXXZ(3, 1.0, 1.0, 0.6, 0.2);
  double T = 1.4;
  FidelityEvaluator Eval(H, T, 8);
  double F2 =
      Eval.fidelity(compileTrotter2(H, T, 2, TermOrderKind::Given).Schedule);
  double F4 =
      Eval.fidelity(compileSuzuki4(H, T, 2, TermOrderKind::Given).Schedule);
  EXPECT_GE(F4, F2 - 1e-9);
  EXPECT_GT(F4, 0.999);
}

TEST(BaselinesTest, Suzuki4TotalTimeIsExact) {
  // The Suzuki coefficients must sum to the full step: 4p + (1-4p) = 1.
  Hamiltonian H = Hamiltonian::parse({{0.7, "XZ"}, {-0.3, "ZY"}});
  CompilationResult R =
      compileSuzuki4(H, 0.9, 3, TermOrderKind::Given);
  double TauXZ = 0.0, TauZY = 0.0;
  for (const auto &Step : R.Schedule) {
    if (Step.String == *PauliString::parse("XZ"))
      TauXZ += Step.Tau;
    else
      TauZY += Step.Tau;
  }
  EXPECT_NEAR(TauXZ, 0.7 * 0.9, 1e-12);
  EXPECT_NEAR(TauZY, -0.3 * 0.9, 1e-12);
}

TEST(BaselinesTest, SparStoSparsifiesAndStaysAccurate) {
  Hamiltonian H = makeHeisenbergXXZ(3, 1.0, 1.0, 0.6, 0.2);
  double T = 0.5;
  RNG Rng(114);
  // Generous keep scale: near-Trotter behaviour, high fidelity.
  CompilationResult Dense = compileSparSto(H, T, 24, 1e6, Rng);
  EXPECT_EQ(Dense.NumSamples, 24 * H.numTerms()); // everything kept
  FidelityEvaluator Eval(H, T, 8);
  EXPECT_GT(Eval.fidelity(Dense.Schedule), 0.99);

  // Aggressive sparsification drops terms but keeps the step unbiased;
  // accuracy degrades gracefully rather than collapsing.
  RNG Rng2(115);
  CompilationResult Sparse = compileSparSto(H, T, 24, 1.2, Rng2);
  EXPECT_LT(Sparse.NumSamples, Dense.NumSamples);
  EXPECT_GT(Eval.fidelity(Sparse.Schedule), 0.8);
}

TEST(BaselinesTest, SparStoKeepsHeaviestTermAlways) {
  Hamiltonian H = Hamiltonian::parse({{1.0, "ZZ"}, {0.01, "XX"}});
  RNG Rng(116);
  CompilationResult R = compileSparSto(H, 0.3, 50, 1.0, Rng);
  size_t Heavy = 0;
  for (size_t Index : R.Sequence)
    Heavy += Index == 0;
  EXPECT_EQ(Heavy, 50u); // q_0 = 1: kept in every repetition
}

TEST(HTTGraphTest, DotExportContainsNodesAndEdges) {
  HTTGraph G = HTTGraph::withQDriftMatrix(example41());
  std::string Dot = G.toDot();
  EXPECT_NE(Dot.find("digraph HTT"), std::string::npos);
  EXPECT_NE(Dot.find("IIIZ"), std::string::npos);
  EXPECT_NE(Dot.find("XXYY"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  // Complete graph: 16 edges.
  size_t Edges = 0;
  for (size_t Pos = Dot.find("->"); Pos != std::string::npos;
       Pos = Dot.find("->", Pos + 1))
    ++Edges;
  EXPECT_EQ(Edges, 16u);
}

TEST(BaselinesTest, GreedyMatchedOrderReducesCNOTs) {
  RNG Rng(110);
  Hamiltonian H = makeRandomHamiltonian(6, 20, Rng);
  auto Given = compileTrotter1(H, 0.5, 4, TermOrderKind::Given);
  auto Greedy = compileTrotter1(H, 0.5, 4, TermOrderKind::GreedyMatched);
  EXPECT_LE(Greedy.Counts.CNOTs, Given.Counts.CNOTs);
}
