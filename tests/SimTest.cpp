//===- tests/SimTest.cpp - simulator and fidelity tests ------------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "linalg/Expm.h"
#include "sim/Evolution.h"
#include "sim/Fidelity.h"
#include "sim/Observables.h"
#include "sim/StatePanel.h"
#include "sim/StateVector.h"
#include "support/RNG.h"
#include "support/Serial.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

namespace {

Matrix gateMatrix(const Gate &G, unsigned N) {
  Circuit C(N);
  C.append(G);
  return circuitUnitary(C);
}

CVector randomState(unsigned N, RNG &Rng) {
  CVector V(size_t(1) << N);
  for (auto &A : V)
    A = Complex(Rng.gaussian(), Rng.gaussian());
  double Norm = vectorNorm(V);
  for (auto &A : V)
    A /= Norm;
  return V;
}

/// The pre-fusion two-pass scratch kernels, kept verbatim as the reference
/// the fused in-place kernels must reproduce bit for bit (including the
/// signs of zeros — EXPECT_EQ on doubles treats -0.0 == +0.0, so the
/// comparisons below go through the raw bit patterns).
void referencePauliExp(CVector &Amp, const PauliString &P, double Theta) {
  const Complex CosT(std::cos(Theta), 0.0);
  const Complex ISinT(0.0, std::sin(Theta));
  if (P.isIdentity()) {
    const Complex Phase = CosT + ISinT;
    for (Complex &A : Amp)
      A *= Phase;
    return;
  }
  CVector Scratch(Amp.size());
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  for (size_t X = 0; X < Amp.size(); ++X)
    Amp[X] = CosT * Amp[X] + ISinT * Scratch[X];
}

void referencePauli(CVector &Amp, const PauliString &P) {
  CVector Scratch(Amp.size());
  const uint64_t XM = P.xMask();
  for (uint64_t X = 0; X < Amp.size(); ++X)
    Scratch[X ^ XM] = P.applyToBasis(X) * Amp[X];
  Amp.swap(Scratch);
}

::testing::AssertionResult bitIdentical(const CVector &A, const Complex *B,
                                        size_t N) {
  for (size_t I = 0; I < N; ++I) {
    if (serial::doubleBits(A[I].real()) != serial::doubleBits(B[I].real()) ||
        serial::doubleBits(A[I].imag()) != serial::doubleBits(B[I].imag()))
      return ::testing::AssertionFailure()
             << "amplitude " << I << " differs: (" << A[I].real() << ", "
             << A[I].imag() << ") vs (" << B[I].real() << ", " << B[I].imag()
             << ")";
  }
  return ::testing::AssertionSuccess();
}

/// A random Pauli string; \p ZOnly restricts to the diagonal alphabet.
PauliString randomString(unsigned N, RNG &Rng, bool ZOnly = false) {
  PauliString P;
  for (unsigned Q = 0; Q < N; ++Q)
    P.setOp(Q, ZOnly ? (Rng.bernoulli(0.5) ? PauliOpKind::Z : PauliOpKind::I)
                     : static_cast<PauliOpKind>(Rng.uniformInt(4)));
  return P;
}

} // namespace

TEST(StateVectorTest, BasisInitialization) {
  StateVector SV(3, 5);
  EXPECT_EQ(SV.dim(), 8u);
  EXPECT_EQ(SV.amplitudes()[5], Complex(1, 0));
  EXPECT_NEAR(SV.norm(), 1.0, 1e-14);
}

TEST(StateVectorTest, HadamardCreatesSuperposition) {
  StateVector SV(1, 0);
  SV.apply(Gate(GateKind::H, 0));
  const double S = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(SV.amplitudes()[0] - Complex(S, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(SV.amplitudes()[1] - Complex(S, 0)), 0.0, 1e-14);
}

TEST(StateVectorTest, CNOTEntangles) {
  StateVector SV(2, 0);
  SV.apply(Gate(GateKind::H, 0));
  SV.apply(Gate::cnot(0, 1));
  const double S = 1.0 / std::sqrt(2.0);
  // (|00> + |11>)/sqrt2.
  EXPECT_NEAR(std::abs(SV.amplitudes()[0] - Complex(S, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(SV.amplitudes()[3] - Complex(S, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(SV.amplitudes()[1]), 0.0, 1e-14);
}

TEST(StateVectorTest, GateMatricesAreUnitary) {
  for (GateKind K :
       {GateKind::H, GateKind::X, GateKind::Y, GateKind::Z, GateKind::S,
        GateKind::Sdg, GateKind::Rx, GateKind::Ry, GateKind::Rz}) {
    Gate G(K, 0, 0.37);
    Matrix U = gateMatrix(G, 1);
    EXPECT_TRUE(U.isUnitary(1e-12)) << gateKindName(K);
  }
  EXPECT_TRUE(gateMatrix(Gate::cnot(0, 1), 2).isUnitary(1e-12));
}

TEST(StateVectorTest, SGateSquaredIsZ) {
  Matrix S = gateMatrix(Gate(GateKind::S, 0), 1);
  Matrix Z = gateMatrix(Gate(GateKind::Z, 0), 1);
  EXPECT_NEAR((S * S).maxAbsDiff(Z), 0.0, 1e-14);
}

TEST(StateVectorTest, RzMatchesDefinition) {
  double Theta = 0.81;
  Matrix Rz = gateMatrix(Gate(GateKind::Rz, 0, Theta), 1);
  EXPECT_NEAR(std::abs(Rz.at(0, 0) - std::exp(Complex(0, -Theta / 2))), 0.0,
              1e-14);
  EXPECT_NEAR(std::abs(Rz.at(1, 1) - std::exp(Complex(0, Theta / 2))), 0.0,
              1e-14);
}

TEST(StateVectorTest, ApplyPauliMatchesDense) {
  RNG Rng(71);
  for (int Trial = 0; Trial < 20; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(4);
    PauliString P;
    for (unsigned Q = 0; Q < N; ++Q)
      P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
    CVector In = randomState(N, Rng);
    StateVector SV(N, In);
    SV.applyPauli(P);
    CVector Expected = P.toMatrix(N) * In;
    for (size_t I = 0; I < In.size(); ++I)
      ASSERT_NEAR(std::abs(SV.amplitudes()[I] - Expected[I]), 0.0, 1e-12);
  }
}

TEST(StateVectorTest, ApplyPauliExpMatchesExpm) {
  RNG Rng(72);
  for (int Trial = 0; Trial < 20; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(3);
    PauliString P;
    for (unsigned Q = 0; Q < N; ++Q)
      P.setOp(Q, static_cast<PauliOpKind>(Rng.uniformInt(4)));
    double Theta = Rng.uniform(-2.0, 2.0);
    CVector In = randomState(N, Rng);
    StateVector SV(N, In);
    SV.applyPauliExp(P, Theta);
    Matrix U = expm(P.toMatrix(N) * Complex(0, Theta));
    CVector Expected = U * In;
    for (size_t I = 0; I < In.size(); ++I)
      ASSERT_NEAR(std::abs(SV.amplitudes()[I] - Expected[I]), 0.0, 1e-10);
  }
}

TEST(StateVectorTest, PauliExpComposition) {
  // exp(i a P) exp(i b P) == exp(i (a+b) P).
  RNG Rng(82);
  PauliString P = *PauliString::parse("XZY");
  CVector In = randomState(3, Rng);
  StateVector Twice(3, In);
  Twice.applyPauliExp(P, 0.4);
  Twice.applyPauliExp(P, 0.35);
  StateVector Once(3, In);
  Once.applyPauliExp(P, 0.75);
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_NEAR(std::abs(Twice.amplitudes()[I] - Once.amplitudes()[I]), 0.0,
                1e-12);
}

TEST(StateVectorTest, PauliExpInverseRestoresState) {
  RNG Rng(84);
  PauliString P = *PauliString::parse("YYX");
  CVector In = randomState(3, Rng);
  StateVector SV(3, In);
  SV.applyPauliExp(P, 1.3);
  SV.applyPauliExp(P, -1.3);
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_NEAR(std::abs(SV.amplitudes()[I] - In[I]), 0.0, 1e-12);
}

TEST(EvolutionTest, ApplyHamiltonianMatchesDense) {
  RNG Rng(73);
  Hamiltonian H = makeRandomHamiltonian(3, 5, Rng);
  CVector In = randomState(3, Rng);
  CVector Got = applyHamiltonian(H, In);
  CVector Expected = H.toMatrix() * In;
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_NEAR(std::abs(Got[I] - Expected[I]), 0.0, 1e-12);
}

TEST(EvolutionTest, EvolveExactMatchesDenseExponential) {
  RNG Rng(74);
  Hamiltonian H = makeRandomHamiltonian(3, 6, Rng);
  double T = 0.9;
  Matrix U = exactUnitary(H, T);
  for (uint64_t Col : {0ull, 3ull, 7ull}) {
    CVector Basis(8, Complex(0, 0));
    Basis[Col] = 1.0;
    CVector Evolved = evolveExact(H, T, Basis);
    for (size_t I = 0; I < 8; ++I)
      EXPECT_NEAR(std::abs(Evolved[I] - U.at(I, Col)), 0.0, 1e-9);
  }
}

TEST(EvolutionTest, EvolutionPreservesNorm) {
  RNG Rng(75);
  Hamiltonian H = makeTransverseFieldIsing(4, 1.0, 0.7);
  CVector In = randomState(4, Rng);
  CVector Out = evolveExact(H, 1.7, In);
  EXPECT_NEAR(vectorNorm(Out), 1.0, 1e-10);
}

TEST(EvolutionTest, ZeroTimeIsIdentity) {
  RNG Rng(76);
  Hamiltonian H = makeRandomHamiltonian(3, 4, Rng);
  CVector In = randomState(3, Rng);
  CVector Out = evolveExact(H, 0.0, In);
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_NEAR(std::abs(Out[I] - In[I]), 0.0, 1e-12);
}

TEST(ObservablesTest, BasisStateExpectations) {
  StateVector SV(3, 0b101);
  // <Z_q> = +1 for bit 0, -1 for bit 1.
  EXPECT_NEAR(expectation(SV, PauliString(0, 1ULL << 0)), -1.0, 1e-14);
  EXPECT_NEAR(expectation(SV, PauliString(0, 1ULL << 1)), 1.0, 1e-14);
  EXPECT_NEAR(expectation(SV, PauliString(0, 1ULL << 2)), -1.0, 1e-14);
  // <X> vanishes on computational basis states.
  EXPECT_NEAR(expectation(SV, PauliString(1ULL << 0, 0)), 0.0, 1e-14);
  EXPECT_NEAR(occupation(SV, 0), 1.0, 1e-14);
  EXPECT_NEAR(occupation(SV, 1), 0.0, 1e-14);
  EXPECT_NEAR(spinZ(SV, 1), 0.5, 1e-14);
}

TEST(ObservablesTest, PlusStateSeesX) {
  StateVector SV(1, 0);
  SV.apply(Gate(GateKind::H, 0));
  EXPECT_NEAR(expectation(SV, PauliString(1, 0)), 1.0, 1e-14); // <X> = 1
  EXPECT_NEAR(expectation(SV, PauliString(0, 1)), 0.0, 1e-14); // <Z> = 0
}

TEST(ObservablesTest, MatchesDenseQuadraticForm) {
  RNG Rng(83);
  Hamiltonian H = makeRandomHamiltonian(3, 6, Rng);
  CVector Amp = randomState(3, Rng);
  StateVector SV(3, Amp);
  double Direct = expectation(SV, H);
  CVector HPsi = H.toMatrix() * Amp;
  double Dense = innerProduct(Amp, HPsi).real();
  EXPECT_NEAR(Direct, Dense, 1e-10);
}

TEST(ObservablesTest, EnergyConservedUnderExactEvolution) {
  Hamiltonian H = makeHeisenbergXXZ(4, 1.0, 1.0, 0.5, 0.2);
  CVector Basis(16, Complex(0, 0));
  Basis[0b0101] = 1.0;
  StateVector Before(4, Basis);
  StateVector After(4, evolveExact(H, 0.9, Basis));
  EXPECT_NEAR(expectation(Before, H), expectation(After, H), 1e-9);
}

TEST(FidelityTest, IdenticalUnitariesGiveOne) {
  RNG Rng(77);
  Hamiltonian H = makeRandomHamiltonian(2, 3, Rng);
  Matrix U = exactUnitary(H, 0.5);
  EXPECT_NEAR(unitaryFidelity(U, U), 1.0, 1e-12);
}

TEST(FidelityTest, GlobalPhaseInvariance) {
  RNG Rng(78);
  Hamiltonian H = makeRandomHamiltonian(2, 3, Rng);
  Matrix U = exactUnitary(H, 0.5);
  Matrix V = U * std::exp(Complex(0, 1.23));
  EXPECT_NEAR(unitaryFidelity(U, V), 1.0, 1e-12);
}

TEST(FidelityTest, OrthogonalUnitariesScoreLow) {
  // X vs I on one qubit: tr(X * I) = 0.
  Matrix X = Matrix::fromRows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(unitaryFidelity(X, Matrix::identity(2)), 0.0, 1e-12);
}

TEST(FidelityEvaluatorTest, ExactModeMatchesDenseFidelity) {
  RNG Rng(79);
  Hamiltonian H = makeRandomHamiltonian(3, 5, Rng);
  double T = 0.4;
  // Schedule: a crude 1-step Trotter of H.
  std::vector<ScheduledRotation> Schedule;
  for (const auto &Term : H.terms())
    Schedule.emplace_back(Term.String, Term.Coeff * T);

  FidelityEvaluator Eval(H, T, /*NumColumns=*/8);
  ASSERT_TRUE(Eval.isExact());
  double Estimated = Eval.fidelity(Schedule);

  // Dense reference.
  Matrix UApp = Matrix::identity(8);
  for (const auto &Step : Schedule)
    UApp = expm(Step.String.toMatrix(3) * Complex(0, Step.Tau)) * UApp;
  double Exact = unitaryFidelity(UApp, exactUnitary(H, T));
  EXPECT_NEAR(Estimated, Exact, 1e-9);
}

TEST(FidelityEvaluatorTest, SampledModeApproximatesExact) {
  RNG Rng(80);
  Hamiltonian H = makeRandomHamiltonian(4, 8, Rng);
  double T = 0.3;
  std::vector<ScheduledRotation> Schedule;
  for (int Rep = 0; Rep < 2; ++Rep)
    for (const auto &Term : H.terms())
      Schedule.emplace_back(Term.String, Term.Coeff * T / 2);

  FidelityEvaluator Exact(H, T, 16);
  FidelityEvaluator Sampled(H, T, 6, /*Seed=*/99);
  ASSERT_FALSE(Sampled.isExact());
  EXPECT_NEAR(Sampled.fidelity(Schedule), Exact.fidelity(Schedule), 0.05);
}

TEST(FidelityEvaluatorTest, CircuitAndScheduleAgree) {
  // The gate-level circuit of a schedule realizes the same fidelity.
  RNG Rng(81);
  Hamiltonian H = makeTransverseFieldIsing(3, 1.0, 0.5);
  double T = 0.6;
  std::vector<ScheduledRotation> Schedule;
  for (const auto &Term : H.terms())
    Schedule.emplace_back(Term.String, Term.Coeff * T);
  Circuit C(3);
  for (const auto &Step : Schedule)
    appendPauliRotation(C, Step.String, 2.0 * Step.Tau);
  FidelityEvaluator Eval(H, T, 8);
  EXPECT_NEAR(Eval.fidelity(Schedule), Eval.fidelityOfCircuit(C), 1e-10);
}

//===----------------------------------------------------------------------===//
// Fused kernels & StatePanel bit-identity
//===----------------------------------------------------------------------===//

TEST(FusedKernelTest, MatchesTwoPassReferenceBitForBit) {
  // Random states AND basis states (exact zeros exercise the sign-of-zero
  // corners of the diagonal fast path), across the full string alphabet,
  // Z-only strings, and the identity.
  RNG Rng(90);
  for (int Trial = 0; Trial < 60; ++Trial) {
    unsigned N = 1 + Rng.uniformInt(5);
    PauliString P = randomString(N, Rng, /*ZOnly=*/Trial % 3 == 1);
    if (Trial % 10 == 9)
      P = PauliString(); // identity path
    double Theta = Rng.uniform(-2.0, 2.0);
    CVector In = Trial % 2 ? randomState(N, Rng)
                           : CVector(size_t(1) << N, Complex(0.0, 0.0));
    if (!(Trial % 2))
      In[Rng.uniformInt(In.size())] = 1.0; // basis state, mostly zeros

    CVector Reference = In;
    referencePauliExp(Reference, P, Theta);
    StateVector Fused(N, In);
    Fused.applyPauliExp(P, Theta);
    ASSERT_TRUE(bitIdentical(Reference, Fused.amplitudes().data(),
                             Reference.size()))
        << "exp trial " << Trial << " string " << P.str(N);

    CVector PauliRef = In;
    referencePauli(PauliRef, P);
    StateVector FusedPauli(N, In);
    FusedPauli.applyPauli(P);
    ASSERT_TRUE(bitIdentical(PauliRef, FusedPauli.amplitudes().data(),
                             PauliRef.size()))
        << "pauli trial " << Trial << " string " << P.str(N);
  }
}

TEST(StatePanelTest, MatchesSerialReplayAcrossColumnCounts) {
  RNG Rng(91);
  const unsigned N = 4;
  const size_t Dim = size_t(1) << N;
  // A schedule mixing butterfly, diagonal, and identity rotations.
  std::vector<ScheduledRotation> Schedule;
  for (int Step = 0; Step < 24; ++Step) {
    PauliString P = randomString(N, Rng, /*ZOnly=*/Step % 4 == 1);
    if (Step % 12 == 11)
      P = PauliString();
    Schedule.emplace_back(P, Rng.uniform(-1.5, 1.5));
  }
  for (size_t Columns : {size_t(1), size_t(3), size_t(8), Dim}) {
    std::vector<uint64_t> Basis(Columns);
    for (size_t C = 0; C < Columns; ++C)
      Basis[C] = (C * 5) % Dim; // distinct for every width above
    StatePanel Panel(N, Basis);
    for (const ScheduledRotation &Step : Schedule)
      Panel.applyPauliExpAll(Step.String, Step.Tau);
    for (size_t C = 0; C < Columns; ++C) {
      StateVector SV(N, Basis[C]);
      for (const ScheduledRotation &Step : Schedule)
        SV.applyPauliExp(Step.String, Step.Tau);
      const CVector Col = Panel.column(C);
      ASSERT_TRUE(bitIdentical(SV.amplitudes(), Col.data(), Dim))
          << Columns << " columns, column " << C;
    }
  }
}

TEST(StatePanelTest, GateApplicationMatchesSerialBitForBit) {
  RNG Rng(92);
  const unsigned N = 3;
  Circuit C(N);
  C.append(Gate(GateKind::H, 0));
  C.append(Gate::cnot(0, 2));
  C.append(Gate(GateKind::Rz, 1, 0.37));
  C.append(Gate(GateKind::S, 2));
  C.append(Gate(GateKind::Rx, 0, -0.81));
  C.append(Gate::cnot(2, 1));
  C.append(Gate(GateKind::Ry, 2, 1.13));
  std::vector<uint64_t> Basis = {0, 3, 5, 6, 7};
  StatePanel Panel(N, Basis);
  Panel.applyAll(C);
  for (size_t Col = 0; Col < Basis.size(); ++Col) {
    StateVector SV(N, Basis[Col]);
    SV.apply(C);
    const CVector PanelCol = Panel.column(Col);
    ASSERT_TRUE(bitIdentical(SV.amplitudes(), PanelCol.data(), SV.dim()))
        << "column " << Col;
  }
}

TEST(FidelityEvaluatorTest, GoldenHexUnchangedByKernelFusion) {
  // Pinned against the pre-fusion seed implementation: a TFIM Trotter
  // schedule whose ZZ terms take the diagonal fast path. A kernel change
  // that perturbs a single bit of any amplitude shows up here. The hex
  // passes through libm transcendentals, so it assumes the CI platform's
  // libm (x86-64 glibc) — the portable contract is the reference-kernel
  // comparisons above.
  Hamiltonian TF = makeTransverseFieldIsing(4, 1.0, 0.7);
  std::vector<ScheduledRotation> Schedule;
  const unsigned Reps = 3;
  for (unsigned R = 0; R < Reps; ++R)
    for (const auto &Term : TF.terms())
      Schedule.emplace_back(Term.String, Term.Coeff * 0.8 / Reps);
  FidelityEvaluator Eval(TF, 0.8, 5, 11);
  EXPECT_EQ(serial::hex16(serial::doubleBits(Eval.fidelity(Schedule))),
            "3fef1a73701db0e5");
}

TEST(FidelityEvaluatorTest, ChunkedEvaluationBitIdenticalForEveryEvalJobs) {
  Hamiltonian H = makeHeisenbergXXZ(5, 1.0, 1.0, 0.8, 0.3);
  std::vector<ScheduledRotation> Schedule;
  for (unsigned R = 0; R < 4; ++R)
    for (const auto &Term : H.terms())
      Schedule.emplace_back(Term.String, Term.Coeff * 0.6 / 4);
  // 32 columns = 4 fixed-width panel blocks: enough to give every EvalJobs
  // value a different block-to-worker assignment.
  FidelityEvaluator Eval(H, 0.6, 32, 5);
  const uint64_t Reference = serial::doubleBits(Eval.fidelity(Schedule, 1));
  for (unsigned Jobs : {2u, 3u, 4u, 8u, 0u})
    EXPECT_EQ(serial::doubleBits(Eval.fidelity(Schedule, Jobs)), Reference)
        << "eval-jobs " << Jobs;

  Circuit C(5);
  for (const auto &Step : Schedule)
    appendPauliRotation(C, Step.String, 2.0 * Step.Tau);
  const uint64_t CircuitRef =
      serial::doubleBits(Eval.fidelityOfCircuit(C, 1));
  for (unsigned Jobs : {3u, 0u})
    EXPECT_EQ(serial::doubleBits(Eval.fidelityOfCircuit(C, Jobs)),
              CircuitRef)
        << "eval-jobs " << Jobs;
}

TEST(FidelityEvaluatorTest, TrotterFidelityImprovesWithReps) {
  Hamiltonian H = makeHeisenbergXXZ(3, 1.0, 1.0, 0.8, 0.3);
  double T = 1.0;
  FidelityEvaluator Eval(H, T, 8);
  double Prev = 0.0;
  for (unsigned Reps : {1u, 4u, 16u}) {
    std::vector<ScheduledRotation> Schedule;
    for (unsigned R = 0; R < Reps; ++R)
      for (const auto &Term : H.terms())
        Schedule.emplace_back(Term.String, Term.Coeff * T / Reps);
    double F = Eval.fidelity(Schedule);
    EXPECT_GT(F, Prev - 1e-6);
    Prev = F;
  }
  EXPECT_GT(Prev, 0.99);
}
