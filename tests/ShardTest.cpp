//===- tests/ShardTest.cpp - Cross-process sharding contracts -----------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contracts of the sharding layer:
//   * ShardPlan splits are contiguous, covering, and near-even (uneven
//     remainders go to the leading shards),
//   * ShardManifest round-trips bit-exactly and rejects truncation, bit
//     flips, and header inconsistencies,
//   * the merged output of a K-shard run is bit-identical to the
//     single-process run for K in {1, 2, 5}, including uneven splits and
//     fidelity samples,
//   * a corrupted or stale manifest is reported and its range re-run; a
//     manifest from a different Hamiltonian is rejected by fingerprint,
//   * valid manifests in the work directory are reused (crash recovery),
//   * the subprocess path (re-exec'd marqsim-cli workers sharing one
//     cache directory) produces the same bits with exactly one
//     gate-cancellation MCFP solve across the whole run.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>

using namespace marqsim;

namespace {

/// A small strongly-interacting Hamiltonian for shard tests.
Hamiltonian testHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"},
                             {0.2, "XYYZ"}});
}

/// The same register with one coefficient changed: a different content
/// fingerprint.
Hamiltonian otherHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"},
                             {0.3, "XYYZ"}});
}

/// A sampling spec with per-shot fidelity (so manifests carry doubles
/// whose exact round trip matters).
TaskSpec testSpec(size_t Shots = 6) {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(testHamiltonian());
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.5;
  Spec.Epsilon = 0.05;
  Spec.Shots = Shots;
  Spec.Seed = 31337;
  Spec.Evaluate.FidelityColumns = 4;
  return Spec;
}

/// A fresh directory under the test temp dir.
std::string freshDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Asserts \p Merged reproduces \p Single bit for bit (everything except
/// wall-clock times).
void expectBitIdentical(const TaskResult &Single, const TaskResult &Merged) {
  EXPECT_EQ(Single.Fingerprint, Merged.Fingerprint);
  EXPECT_EQ(Single.NumSamples, Merged.NumSamples);
  EXPECT_EQ(Single.Batch.batchHash(), Merged.Batch.batchHash());
  EXPECT_EQ(Single.Batch.StrategyName, Merged.Batch.StrategyName);
  ASSERT_EQ(Single.Batch.Shots.size(), Merged.Batch.Shots.size());
  for (size_t I = 0; I < Single.Batch.Shots.size(); ++I) {
    const ShotSummary &A = Single.Batch.Shots[I];
    const ShotSummary &B = Merged.Batch.Shots[I];
    EXPECT_EQ(A.SequenceHash, B.SequenceHash) << "shot " << I;
    EXPECT_EQ(A.NumSamples, B.NumSamples) << "shot " << I;
    EXPECT_EQ(A.Counts.CNOTs, B.Counts.CNOTs) << "shot " << I;
    EXPECT_EQ(A.Counts.SingleQubit, B.Counts.SingleQubit) << "shot " << I;
    EXPECT_EQ(A.Stats.CancelledCNOTs, B.Stats.CancelledCNOTs) << "shot " << I;
    EXPECT_EQ(A.Stats.CancelledSingles, B.Stats.CancelledSingles)
        << "shot " << I;
  }
  // Aggregates recompute through the same Welford pass: exact equality.
  EXPECT_EQ(Single.Batch.CNOTs.Mean, Merged.Batch.CNOTs.Mean);
  EXPECT_EQ(Single.Batch.CNOTs.Std, Merged.Batch.CNOTs.Std);
  EXPECT_EQ(Single.Batch.Totals.Mean, Merged.Batch.Totals.Mean);
  EXPECT_EQ(Single.Batch.TotalCancelledCNOTs,
            Merged.Batch.TotalCancelledCNOTs);
  ASSERT_EQ(Single.HasFidelity, Merged.HasFidelity);
  ASSERT_EQ(Single.ShotFidelities.size(), Merged.ShotFidelities.size());
  for (size_t I = 0; I < Single.ShotFidelities.size(); ++I)
    EXPECT_EQ(Single.ShotFidelities[I], Merged.ShotFidelities[I])
        << "fidelity of shot " << I;
  EXPECT_EQ(Single.Fidelity.Mean, Merged.Fidelity.Mean);
  EXPECT_EQ(Single.Fidelity.Std, Merged.Fidelity.Std);
}

} // namespace

//===----------------------------------------------------------------------===//
// ShardPlan
//===----------------------------------------------------------------------===//

TEST(ShardPlanTest, SplitsAreContiguousCoveringAndNearEven) {
  for (size_t Shots : {1u, 2u, 5u, 6u, 7u, 11u, 64u})
    for (unsigned K : {1u, 2u, 3u, 5u, 8u}) {
      ShardPlan Plan = ShardPlan::split(Shots, K);
      EXPECT_EQ(Plan.shardCount(), std::min<size_t>(K, Shots))
          << Shots << "/" << K;
      size_t Next = 0, MinCount = Shots, MaxCount = 0;
      for (const ShotRange &R : Plan.Ranges) {
        EXPECT_EQ(R.Begin, Next);
        EXPECT_GE(R.Count, 1u);
        MinCount = std::min(MinCount, R.Count);
        MaxCount = std::max(MaxCount, R.Count);
        Next = R.end();
      }
      EXPECT_EQ(Next, Shots) << Shots << "/" << K;
      EXPECT_LE(MaxCount - MinCount, 1u) << Shots << "/" << K;
    }
}

TEST(ShardPlanTest, UnevenRemaindersGoToLeadingShards) {
  ShardPlan Plan = ShardPlan::split(7, 2);
  ASSERT_EQ(Plan.shardCount(), 2u);
  EXPECT_EQ(Plan.Ranges[0].Count, 4u);
  EXPECT_EQ(Plan.Ranges[1].Count, 3u);

  Plan = ShardPlan::split(6, 5);
  ASSERT_EQ(Plan.shardCount(), 5u);
  EXPECT_EQ(Plan.Ranges[0].Count, 2u);
  for (size_t I = 1; I < 5; ++I)
    EXPECT_EQ(Plan.Ranges[I].Count, 1u);

  // Zero shards behaves as one; zero shots yields an empty plan.
  EXPECT_EQ(ShardPlan::split(3, 0).shardCount(), 1u);
  EXPECT_EQ(ShardPlan::split(0, 4).shardCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Ranged service runs
//===----------------------------------------------------------------------===//

TEST(ShotRangeTest, RangedRunsUseGlobalShotIndices) {
  SimulationService Service;
  TaskSpec Spec = testSpec(6);
  std::optional<TaskResult> Full = Service.run(Spec);
  ASSERT_TRUE(Full);
  std::optional<TaskResult> Tail = Service.run(Spec, ShotRange{4, 2});
  ASSERT_TRUE(Tail);
  ASSERT_EQ(Tail->Batch.Shots.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(Tail->Batch.Shots[I].SequenceHash,
              Full->Batch.Shots[4 + I].SequenceHash);
    EXPECT_EQ(Tail->ShotFidelities[I], Full->ShotFidelities[4 + I]);
  }
  // ExportShotZero is global: a range not containing shot 0 ignores it.
  Spec.Evaluate.ExportShotZero = true;
  std::optional<TaskResult> NoZero = Service.run(Spec, ShotRange{2, 2});
  ASSERT_TRUE(NoZero);
  EXPECT_FALSE(NoZero->HasShotZero);
  std::optional<TaskResult> WithZero = Service.run(Spec, ShotRange{0, 2});
  ASSERT_TRUE(WithZero);
  EXPECT_TRUE(WithZero->HasShotZero);

  std::string Error;
  EXPECT_FALSE(Service.run(Spec, ShotRange{5, 2}, &Error));
  EXPECT_NE(Error.find("shot range"), std::string::npos);
  EXPECT_FALSE(Service.run(Spec, ShotRange{0, 0}, &Error));
}

//===----------------------------------------------------------------------===//
// ShardManifest
//===----------------------------------------------------------------------===//

TEST(ShardManifestTest, RoundTripsBitExactly) {
  SimulationService Service;
  TaskSpec Spec = testSpec(5);
  std::string Error;
  std::optional<ShardManifest> M =
      ShardCoordinator::runShard(Service, Spec, 1, 2, &Error);
  ASSERT_TRUE(M) << Error;
  EXPECT_EQ(M->Range.Begin, 3u); // 5 shots over 2 shards: 3 + 2
  EXPECT_EQ(M->Range.Count, 2u);

  std::optional<ShardManifest> Back = ShardManifest::parse(M->serialize());
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->Fingerprint, M->Fingerprint);
  EXPECT_EQ(Back->Seed, M->Seed);
  EXPECT_EQ(Back->StrategyName, M->StrategyName);
  EXPECT_EQ(Back->TotalShots, M->TotalShots);
  EXPECT_EQ(Back->NumSamples, M->NumSamples);
  EXPECT_EQ(Back->rangeHash(), M->rangeHash());
  ASSERT_EQ(Back->Shots.size(), M->Shots.size());
  for (size_t I = 0; I < M->Shots.size(); ++I) {
    EXPECT_EQ(Back->Shots[I].SequenceHash, M->Shots[I].SequenceHash);
    EXPECT_EQ(Back->Shots[I].Counts.CNOTs, M->Shots[I].Counts.CNOTs);
  }
  ASSERT_EQ(Back->Fidelities.size(), M->Fidelities.size());
  for (size_t I = 0; I < M->Fidelities.size(); ++I)
    EXPECT_EQ(Back->Fidelities[I], M->Fidelities[I]) << "exact IEEE-754";
}

TEST(ShardManifestTest, RejectsTruncationBitFlipsAndBadHeaders) {
  SimulationService Service;
  TaskSpec Spec = testSpec(4);
  std::optional<ShardManifest> M =
      ShardCoordinator::runShard(Service, Spec, 0, 2);
  ASSERT_TRUE(M);
  std::string Text = M->serialize();
  std::string Error;

  EXPECT_FALSE(ShardManifest::parse(Text.substr(0, Text.size() / 2), &Error));
  EXPECT_NE(Error.find("checksum"), std::string::npos);

  // Flip one character somewhere in the payload: the checksum catches it
  // even where the field itself would still parse.
  for (size_t Pos : {Text.find("range 0"), Text.size() / 3}) {
    ASSERT_NE(Pos, std::string::npos);
    std::string Flipped = Text;
    Flipped[Pos] = Flipped[Pos] == '0' ? '1' : '0';
    EXPECT_FALSE(ShardManifest::parse(Flipped, &Error)) << "pos " << Pos;
  }

  // A manifest from a different (e.g. future) format version fails the
  // magic check and is re-run, never misparsed.
  EXPECT_FALSE(ShardManifest::parse("marqsim-shard-v9\n" + Text, &Error));
  EXPECT_FALSE(ShardManifest::parse("", &Error));

  // A self-consistent file whose shot lines disagree with the declared
  // range is rejected even with a fresh checksum.
  ShardManifest Bad = *M;
  Bad.Range.Count += 1;
  EXPECT_FALSE(ShardManifest::parse(Bad.serialize(), &Error));
  EXPECT_NE(Error.find("shot count"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Merged bit-identity (in-process coordinator)
//===----------------------------------------------------------------------===//

TEST(ShardCoordinatorTest, MergedOutputBitIdenticalForK125) {
  // 6 shots: K=5 forces the uneven 2+1+1+1+1 split.
  TaskSpec Spec = testSpec(6);
  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  for (unsigned K : {1u, 2u, 5u}) {
    ShardOptions Options;
    Options.ShardCount = K;
    Options.WorkDir = freshDir("shard_merge_k" + std::to_string(K));
    ShardCoordinator Coordinator(Options);
    std::string Error;
    ShardReport Report;
    std::optional<TaskResult> Merged =
        Coordinator.run(Spec, &Error, &Report);
    ASSERT_TRUE(Merged) << "K=" << K << ": " << Error;
    EXPECT_EQ(Report.Plan.shardCount(), K);
    EXPECT_EQ(Report.Retries, 0u);
    expectBitIdentical(*Single, *Merged);
  }
}

TEST(ShardCoordinatorTest, ValidManifestsAreReused) {
  TaskSpec Spec = testSpec(6);
  ShardOptions Options;
  Options.ShardCount = 3;
  Options.WorkDir = freshDir("shard_reuse");

  ShardReport First;
  std::optional<TaskResult> A =
      ShardCoordinator(Options).run(Spec, nullptr, &First);
  ASSERT_TRUE(A);
  EXPECT_EQ(First.Reused, 0u);

  // Same work directory, fresh coordinator: all ranges resume from disk.
  ShardReport Second;
  std::optional<TaskResult> B =
      ShardCoordinator(Options).run(Spec, nullptr, &Second);
  ASSERT_TRUE(B);
  EXPECT_EQ(Second.Reused, 3u);
  EXPECT_EQ(A->Batch.batchHash(), B->Batch.batchHash());

  // A different seed must not reuse them (stale-manifest detection).
  TaskSpec Reseeded = Spec;
  Reseeded.Seed += 1;
  ShardReport Third;
  std::optional<TaskResult> C =
      ShardCoordinator(Options).run(Reseeded, nullptr, &Third);
  ASSERT_TRUE(C);
  EXPECT_EQ(Third.Reused, 0u);
  EXPECT_FALSE(Third.Notes.empty());
  EXPECT_NE(A->Batch.batchHash(), C->Batch.batchHash());
}

TEST(ShardCoordinatorTest, ChangedParametersInvalidateStaleManifests) {
  // Fingerprint, seed, and shot count all match — only a compilation
  // knob differs. TaskSpec::contentKey in the manifest must force the
  // re-run; without it the stale epsilon-0.05 results would merge.
  TaskSpec Spec = testSpec(6);
  ShardOptions Options;
  Options.ShardCount = 2;
  Options.WorkDir = freshDir("shard_stale_params");
  ASSERT_TRUE(ShardCoordinator(Options).run(Spec));

  for (auto Mutate : std::vector<std::function<void(TaskSpec &)>>{
           [](TaskSpec &S) { S.Epsilon = 0.02; },
           [](TaskSpec &S) { S.Time = 0.75; },
           [](TaskSpec &S) { S.Mix = ChannelMix{0.6, 0.4, 0.0}; },
           [](TaskSpec &S) { S.Evaluate.ColumnSeed += 1; }}) {
    TaskSpec Changed = Spec;
    Mutate(Changed);
    SimulationService Reference;
    std::optional<TaskResult> Single = Reference.run(Changed);
    ASSERT_TRUE(Single);
    ShardReport Report;
    std::optional<TaskResult> Merged =
        ShardCoordinator(Options).run(Changed, nullptr, &Report);
    ASSERT_TRUE(Merged);
    EXPECT_EQ(Report.Reused, 0u) << "stale manifests must not be reused";
    ASSERT_FALSE(Report.Notes.empty());
    EXPECT_NE(Report.Notes[0].find("configuration mismatch"),
              std::string::npos)
        << Report.Notes[0];
    expectBitIdentical(*Single, *Merged);
    // Restore the directory to Spec's manifests for the next mutation.
    ASSERT_TRUE(ShardCoordinator(Options).run(Spec));
  }
}

TEST(ShardCoordinatorTest, CorruptManifestIsReportedAndReRun) {
  TaskSpec Spec = testSpec(6);
  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  ShardOptions Options;
  Options.ShardCount = 3;
  Options.WorkDir = freshDir("shard_corrupt");
  ASSERT_TRUE(ShardCoordinator(Options).run(Spec));

  // Truncate one manifest and bit-flip another; the third stays valid.
  {
    std::string Path = ShardCoordinator::manifestPath(Options.WorkDir, 1);
    std::ifstream In(Path);
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    In.close();
    std::ofstream(Path) << Text.substr(0, Text.size() / 3);
  }
  {
    std::string Path = ShardCoordinator::manifestPath(Options.WorkDir, 2);
    std::fstream File(Path, std::ios::in | std::ios::out);
    File.seekp(40);
    File.put('x');
  }

  ShardReport Report;
  std::string Error;
  std::optional<TaskResult> Merged =
      ShardCoordinator(Options).run(Spec, &Error, &Report);
  ASSERT_TRUE(Merged) << Error;
  EXPECT_EQ(Report.Reused, 1u);
  ASSERT_GE(Report.Notes.size(), 2u);
  for (const std::string &Note : Report.Notes)
    EXPECT_NE(Note.find("rejected"), std::string::npos) << Note;
  expectBitIdentical(*Single, *Merged);
}

TEST(ShardCoordinatorTest, ForeignFingerprintManifestIsRejectedAndReRun) {
  TaskSpec Spec = testSpec(6);
  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  ShardOptions Options;
  Options.ShardCount = 2;
  Options.WorkDir = freshDir("shard_foreign");
  std::filesystem::create_directories(Options.WorkDir);

  // Pre-place a perfectly well-formed manifest compiled from a *different*
  // Hamiltonian at shard 0's path.
  TaskSpec Foreign = Spec;
  Foreign.Source = HamiltonianSource::fromHamiltonian(otherHamiltonian());
  SimulationService ForeignService;
  std::optional<ShardManifest> ForeignManifest =
      ShardCoordinator::runShard(ForeignService, Foreign, 0, 2);
  ASSERT_TRUE(ForeignManifest);
  ASSERT_TRUE(ForeignManifest->writeFile(
      ShardCoordinator::manifestPath(Options.WorkDir, 0)));

  ShardReport Report;
  std::optional<TaskResult> Merged =
      ShardCoordinator(Options).run(Spec, nullptr, &Report);
  ASSERT_TRUE(Merged);
  EXPECT_EQ(Report.Reused, 0u);
  ASSERT_FALSE(Report.Notes.empty());
  EXPECT_NE(Report.Notes[0].find("fingerprint mismatch"),
            std::string::npos);
  expectBitIdentical(*Single, *Merged);
}

TEST(ShardCoordinatorTest, MergeRejectsInconsistentManifestSets) {
  TaskSpec Spec = testSpec(6);
  SimulationService Service;
  std::vector<ShardManifest> Manifests;
  for (unsigned I = 0; I < 2; ++I) {
    std::optional<ShardManifest> M =
        ShardCoordinator::runShard(Service, Spec, I, 2);
    ASSERT_TRUE(M);
    Manifests.push_back(std::move(*M));
  }
  uint64_t Fingerprint = Manifests[0].Fingerprint;
  ASSERT_TRUE(
      ShardCoordinator::merge(Spec, Fingerprint, Manifests, nullptr));

  std::string Error;
  // Fingerprint-mismatch rejection.
  EXPECT_FALSE(
      ShardCoordinator::merge(Spec, Fingerprint ^ 1, Manifests, &Error));
  EXPECT_NE(Error.find("fingerprint mismatch"), std::string::npos);

  // Coverage gap: drop the second half.
  EXPECT_FALSE(ShardCoordinator::merge(Spec, Fingerprint, {Manifests[0]},
                                       &Error));
  EXPECT_NE(Error.find("coverage"), std::string::npos);

  // Overlap: the first half twice.
  EXPECT_FALSE(ShardCoordinator::merge(
      Spec, Fingerprint, {Manifests[0], Manifests[0]}, &Error));

  // Seed disagreement.
  std::vector<ShardManifest> Reseeded = Manifests;
  Reseeded[1].Seed += 1;
  EXPECT_FALSE(
      ShardCoordinator::merge(Spec, Fingerprint, Reseeded, &Error));
  EXPECT_NE(Error.find("seed"), std::string::npos);

  // Task-parameter disagreement (same fingerprint and seed).
  TaskSpec Retargeted = Spec;
  Retargeted.Epsilon *= 2;
  EXPECT_FALSE(
      ShardCoordinator::merge(Retargeted, Fingerprint, Manifests, &Error));
  EXPECT_NE(Error.find("configuration mismatch"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Subprocess workers (re-exec'd marqsim-cli)
//===----------------------------------------------------------------------===//

namespace {

/// Path of the marqsim-cli binary, provided by CMake through the test
/// environment.
std::string cliBinary() {
  const char *Env = std::getenv("MARQSIM_CLI");
  return Env ? Env : "";
}

} // namespace

TEST(SubprocessTest, ReportsExitCodesAndExecFailures) {
  Subprocess True;
  ASSERT_TRUE(True.spawn({{"/bin/sh", "-c", "exit 0"}, "", ""}));
  EXPECT_EQ(True.wait(), 0);
  Subprocess False;
  ASSERT_TRUE(False.spawn({{"/bin/sh", "-c", "exit 3"}, "", ""}));
  EXPECT_EQ(False.wait(), 3);
  Subprocess Missing;
  ASSERT_TRUE(Missing.spawn(
      {{testing::TempDir() + "no_such_binary_zzz"}, "", ""}));
  EXPECT_EQ(Missing.wait(), 127);
  std::string Error;
  Subprocess Empty;
  EXPECT_FALSE(Empty.spawn({{}, "", ""}, &Error));
}

TEST(ShardSubprocessTest, WorkersShareOneCacheAndMergeBitIdentically) {
  std::string Binary = cliBinary();
  if (Binary.empty())
    GTEST_SKIP() << "MARQSIM_CLI not set (run through ctest)";

  // The worker re-parses the spec from its command line, so the source
  // must be a file.
  std::string HamPath = testing::TempDir() + "shard_sub_ham.txt";
  {
    Hamiltonian H = testHamiltonian();
    std::ofstream Out(HamPath);
    for (const PauliTerm &T : H.terms())
      Out << T.Coeff << " " << T.String.str(H.numQubits()) << "\n";
  }
  TaskSpec Spec = testSpec(5); // 3 shards -> uneven 2+2+1
  Spec.Source = HamiltonianSource::fromFile(HamPath);
  Spec.Evaluate.FidelityColumns = 2;
  // Non-default values for every spec field with its own transport flag:
  // a field the worker command line dropped would flunk the SpecKey
  // check and show up below as retries.
  Spec.Flow.ProbScale = 500'000'000;
  Spec.Evaluate.ColumnSeed = 11;
  Spec.PerturbSeed = 0xFEED;

  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  ShardOptions Options;
  Options.ShardCount = 3;
  Options.WorkDir = freshDir("shard_subprocess");
  Options.CacheDir = freshDir("shard_subprocess_cache");
  Options.WorkerBinary = Binary;
  ShardCoordinator Coordinator(Options);
  std::string Error;
  ShardReport Report;
  std::optional<TaskResult> Merged = Coordinator.run(Spec, &Error, &Report);
  ASSERT_TRUE(Merged) << Error;
  expectBitIdentical(*Single, *Merged);

  // The coordinator pre-warmed the shared store with the only solve;
  // every worker loaded both the alias bundle (which subsumes the MCFP
  // component) and the fidelity target columns from disk — two disk
  // loads per worker, zero solves and zero evaluator rebuilds.
  EXPECT_EQ(Report.LocalStats.GCSolveMisses, 1u);
  EXPECT_EQ(Report.LocalStats.EvaluatorMisses, 1u);
  EXPECT_EQ(Report.WorkerStats.GCSolveMisses, 0u);
  EXPECT_EQ(Report.WorkerStats.EvaluatorMisses, 0u);
  EXPECT_EQ(Report.WorkerStats.DiskLoads, 6u);
  EXPECT_EQ(Report.Retries, 0u);
}

TEST(SubprocessTest, TerminateDeliversSigtermAndReaps) {
  Subprocess Sleeper;
  ASSERT_TRUE(Sleeper.spawn({{"/bin/sh", "-c", "exec sleep 30"}, "", ""}));
  EXPECT_GT(Sleeper.pid(), 0);
  EXPECT_EQ(Sleeper.terminate(/*GraceMs=*/5000), 128 + SIGTERM);
  EXPECT_FALSE(Sleeper.running());
  EXPECT_EQ(Sleeper.pid(), -1);
  // Idempotent after the child is gone.
  EXPECT_FALSE(Sleeper.signalChild(SIGTERM));
  EXPECT_EQ(Sleeper.terminate(), 128 + SIGTERM);
}

TEST(SubprocessTest, TerminateEscalatesToSigkillForStubbornChildren) {
  // A child that ignores SIGTERM must not stall teardown past the grace
  // window: terminate() escalates to SIGKILL.
  // Short sleeps in a loop: when SIGKILL takes the shell, any orphaned
  // sleep exits within a second instead of pinning the test's inherited
  // stdout pipe open for the full duration.
  Subprocess Stubborn;
  ASSERT_TRUE(Stubborn.spawn(
      {{"/bin/sh", "-c", "trap '' TERM; while :; do sleep 1; done"}, "",
       ""}));
  // Give the shell a moment to install the trap, or the first SIGTERM
  // lands before it and the test measures nothing.
  std::ifstream Stat("/proc/" + std::to_string(Stubborn.pid()) + "/stat");
  ASSERT_TRUE(Stat.good());
  usleep(100000);
  EXPECT_EQ(Stubborn.terminate(/*GraceMs=*/200), 128 + SIGKILL);
}

TEST(ShardSubprocessTest, KilledWorkerRangeIsDetectedStaleAndReRun) {
  std::string Binary = cliBinary();
  if (Binary.empty())
    GTEST_SKIP() << "MARQSIM_CLI not set (run through ctest)";

  std::string HamPath = testing::TempDir() + "shard_kill_ham.txt";
  {
    Hamiltonian H = testHamiltonian();
    std::ofstream Out(HamPath);
    for (const PauliTerm &T : H.terms())
      Out << T.Coeff << " " << T.String.str(H.numQubits()) << "\n";
  }
  TaskSpec Spec = testSpec(5);
  Spec.Source = HamiltonianSource::fromFile(HamPath);
  Spec.Evaluate.FidelityColumns = 2;

  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  // Interpose a wrapper worker that simulates an external SIGTERM
  // arriving mid-shard: on its first shard-0 invocation it leaves a
  // half-written manifest behind and dies of the signal; afterwards it
  // execs the real CLI. The coordinator must report the signal death,
  // reject the partial manifest as stale, and re-run exactly that range.
  std::string Dir = freshDir("shard_killed_worker");
  std::string Marker = Dir + "/died-once";
  std::string Wrapper = Dir + "/worker.sh";
  {
    std::ofstream Script(Wrapper);
    Script << "#!/bin/sh\nout=\"\"\nidx=\"\"\nfor a in \"$@\"; do\n"
              "  case \"$a\" in\n"
              "    --shard-out=*) out=\"${a#--shard-out=}\";;\n"
              "    --shard-index=*) idx=\"${a#--shard-index=}\";;\n"
              "  esac\ndone\n"
              "if [ \"$idx\" = \"0\" ] && [ ! -e \""
           << Marker
           << "\" ]; then\n"
              "  : > \""
           << Marker
           << "\"\n"
              "  printf 'marqsim-shard-v1\\ntrunc' > \"$out\"\n"
              "  kill -TERM $$\n"
              "  exit 1\nfi\n"
              "exec \""
           << Binary << "\" \"$@\"\n";
  }
  std::filesystem::permissions(Wrapper,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);

  ShardOptions Options;
  Options.ShardCount = 2;
  Options.WorkDir = freshDir("shard_killed_worker_wd");
  Options.CacheDir = freshDir("shard_killed_worker_cache");
  Options.WorkerBinary = Wrapper;
  ShardCoordinator Coordinator(Options);
  std::string Error;
  ShardReport Report;
  std::optional<TaskResult> Merged = Coordinator.run(Spec, &Error, &Report);
  ASSERT_TRUE(Merged) << Error;
  expectBitIdentical(*Single, *Merged);
  EXPECT_EQ(Report.Retries, 1u);
  // Both symptoms must be on the record: the signal exit and the partial
  // manifest that got rejected before its range was re-run.
  bool SawSignalExit = false, SawRejected = false;
  for (const std::string &Note : Report.Notes) {
    SawSignalExit |= Note.find("exited with status 143") != std::string::npos;
    SawRejected |= Note.find("rejected") != std::string::npos;
  }
  EXPECT_TRUE(SawSignalExit) << "missing worker signal-exit note";
  EXPECT_TRUE(SawRejected) << "missing stale-manifest rejection note";
}

TEST(ShardSubprocessTest, InlineSourcesCannotReExec) {
  TaskSpec Spec = testSpec(4);
  std::string Error;
  EXPECT_FALSE(ShardCoordinator::workerArgs("marqsim-cli", Spec, 0, 2,
                                            "out.manifest", "", 0, &Error));
  EXPECT_NE(Error.find("inline"), std::string::npos);
}

TEST(ShardCoordinatorTest, Fp32PrecisionIsRejected) {
  // Shard manifests carry per-shot fidelities as exact bit patterns and
  // the merge is validated byte for byte; the FP32 tier is only
  // tolerance-defined, so sharded runs must refuse it loudly at every
  // entry point rather than produce a manifest that can never be
  // cross-checked.
  TaskSpec Spec = testSpec(4);
  Spec.Precision = EvalPrecision::FP32;

  ShardOptions Options;
  Options.ShardCount = 2;
  Options.WorkDir = freshDir("shard_fp32_rejected");
  std::string Error;
  EXPECT_FALSE(ShardCoordinator(Options).run(Spec, &Error));
  EXPECT_NE(Error.find("fp64"), std::string::npos) << Error;
  EXPECT_NE(Error.find("bit-exact"), std::string::npos) << Error;

  // The worker-side entry point rejects it too (a doctored worker command
  // line must not silently produce a tolerance-grade manifest).
  Error.clear();
  SimulationService Service;
  EXPECT_FALSE(ShardCoordinator::runShard(Service, Spec, 0, 2, &Error));
  EXPECT_NE(Error.find("fp64"), std::string::npos) << Error;
}
