//===- tests/FleetTest.cpp - Cross-host execution fabric contracts ------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contracts of the cross-host fabric:
//   * a fleet run over loopback daemons is bit-identical to the
//     single-process run, with exactly one MCFP solve fleet-wide — the
//     workers are warmed over the wire through content-addressed
//     artifact frames, not a shared filesystem,
//   * a worker that dies mid-range is dropped and its in-flight range
//     re-dispatched to the survivors without burning the retry budget,
//   * a live worker returning a corrupt or mismatched manifest is
//     attempt-charged and the range re-run; a fleet of only lying
//     workers aborts after the bounded attempt budget,
//   * artifact-get for an unknown key answers a typed not-found error
//     (never a hang), corrupt artifact-put bodies are rejected, and an
//     oversized frame on the artifact path is cut off cleanly,
//   * DaemonClient::connectTo's bounded retry absorbs daemons still
//     binding their port and fails fast when nothing ever listens.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Daemon.h"
#include "shard/ShardCoordinator.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>

using namespace marqsim;
using server::Frame;

namespace {

Hamiltonian testHamiltonian() {
  return Hamiltonian::parse({{1.0, "IIZY"},
                             {0.8, "XXII"},
                             {0.6, "ZXZY"},
                             {0.4, "IZZX"},
                             {0.2, "XYYZ"}});
}

/// A sampling spec with per-shot fidelity, inline Hamiltonian (fleet
/// specs travel as JSON, so no file source is needed).
TaskSpec testSpec(size_t Shots = 6) {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(testHamiltonian());
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.5;
  Spec.Epsilon = 0.05;
  Spec.Shots = Shots;
  Spec.Seed = 31337;
  Spec.Evaluate.FidelityColumns = 3;
  return Spec;
}

std::string freshDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

void expectBitIdentical(const TaskResult &Single, const TaskResult &Merged) {
  EXPECT_EQ(Single.Fingerprint, Merged.Fingerprint);
  EXPECT_EQ(Single.Batch.batchHash(), Merged.Batch.batchHash());
  ASSERT_EQ(Single.Batch.Shots.size(), Merged.Batch.Shots.size());
  for (size_t I = 0; I < Single.Batch.Shots.size(); ++I)
    EXPECT_EQ(Single.Batch.Shots[I].SequenceHash,
              Merged.Batch.Shots[I].SequenceHash)
        << "shot " << I;
  EXPECT_EQ(Single.Batch.CNOTs.Mean, Merged.Batch.CNOTs.Mean);
  EXPECT_EQ(Single.Batch.CNOTs.Std, Merged.Batch.CNOTs.Std);
  ASSERT_EQ(Single.ShotFidelities.size(), Merged.ShotFidelities.size());
  for (size_t I = 0; I < Single.ShotFidelities.size(); ++I)
    EXPECT_EQ(Single.ShotFidelities[I], Merged.ShotFidelities[I])
        << "fidelity bits of shot " << I;
  EXPECT_EQ(Single.Fidelity.Mean, Merged.Fidelity.Mean);
  EXPECT_EQ(Single.Fidelity.Std, Merged.Fidelity.Std);
}

/// A live daemon on an ephemeral port with its serve() loop on a thread.
struct TestDaemon {
  SimulationService Service;
  server::Daemon D;
  std::thread Server;
  std::atomic<int> Exit{-1};

  explicit TestDaemon(server::DaemonOptions Opts = {}) : D(Service, Opts) {
    std::string Error;
    Started = D.start(&Error);
    EXPECT_TRUE(Started) << Error;
    if (Started)
      Server = std::thread([this] { Exit = D.serve(); });
  }
  ~TestDaemon() { stop(); }

  int stop() {
    if (Server.joinable()) {
      D.notifyShutdown();
      Server.join();
    }
    return Exit;
  }

  std::string hostPort() const {
    return "127.0.0.1:" + std::to_string(D.port());
  }

  bool Started = false;
};

/// A scripted fabric worker for fault injection: accepts connections on
/// an ephemeral port and hands every decoded frame to \p Handle, which
/// answers on the socket and returns false to hang up. The real daemon
/// never lies or dies mid-range; these scenarios need a worker that does.
struct FakeWorker {
  using Handler = std::function<bool(Socket &, const Frame &)>;

  ListenSocket L;
  int WakePipe[2] = {-1, -1};
  std::thread T;

  explicit FakeWorker(Handler Handle) {
    EXPECT_TRUE(L.listenOn("127.0.0.1", 0));
    EXPECT_EQ(pipe(WakePipe), 0);
    T = std::thread([this, Handle = std::move(Handle)] {
      for (;;) {
        bool Woke = false;
        std::optional<Socket> S = L.accept(WakePipe[0], &Woke);
        if (!S)
          return; // woken for shutdown, or listener torn down
        std::string Line;
        while (S->readLine(Line, server::MaxRequestFrameBytes) ==
               Socket::ReadStatus::Line) {
          std::optional<Frame> F = server::decodeFrame(Line);
          if (!F || !Handle(*S, *F))
            break;
        }
      }
    });
  }

  ~FakeWorker() {
    if (WakePipe[1] >= 0)
      (void)!write(WakePipe[1], "x", 1);
    if (T.joinable())
      T.join();
    if (WakePipe[0] >= 0) {
      ::close(WakePipe[0]);
      ::close(WakePipe[1]);
    }
  }

  std::string hostPort() const {
    return "127.0.0.1:" + std::to_string(L.port());
  }
};

/// Answers the coordinator's warm-up frames as if every artifact were
/// already held, so the dispatch phase is reached without any pushes.
bool claimAllArtifacts(Socket &S, const Frame &F) {
  if (F.Type != "artifact-get")
    return false;
  json::Value Body = json::Value::object()
                         .set("atype", F.Body.find("atype")->asString())
                         .set("id", F.Body.find("id")->asString())
                         .set("found", true);
  return S.sendAll(server::encodeFrame("artifact", std::move(Body)));
}

} // namespace

//===----------------------------------------------------------------------===//
// Stats serializers
//===----------------------------------------------------------------------===//

TEST(FleetStatsTest, SerializerAggregatesPerWorkerCounters) {
  FleetStats S;
  S.Used = true;
  FleetWorkerStats A;
  A.HostPort = "10.0.0.1:4000";
  A.RangesDispatched = 3;
  A.FetchMisses = 2;
  A.ArtifactBytesServed = 4096;
  FleetWorkerStats B;
  B.HostPort = "10.0.0.2:4000";
  B.RangesDispatched = 2;
  B.RangesRedispatched = 1;
  B.FetchHits = 2;
  B.Alive = false;
  S.Workers = {A, B};

  json::Value V = server::fleetStatsJson(S);
  EXPECT_EQ(V.find("workers")->asInt(), 2);
  EXPECT_EQ(V.find("dead_workers")->asInt(), 1);
  EXPECT_EQ(V.find("ranges_dispatched")->asInt(), 5);
  EXPECT_EQ(V.find("ranges_redispatched")->asInt(), 1);
  EXPECT_EQ(V.find("fetch_hits")->asInt(), 2);
  EXPECT_EQ(V.find("fetch_misses")->asInt(), 2);
  EXPECT_EQ(V.find("artifact_bytes_served")->asInt(), 4096);
  const json::Value *Per = V.find("per_worker");
  ASSERT_NE(Per, nullptr);
  ASSERT_EQ(Per->size(), 2u);
  EXPECT_EQ(Per->at(0).find("worker")->asString(), "10.0.0.1:4000");
  EXPECT_TRUE(Per->at(0).find("alive")->asBool());
  EXPECT_FALSE(Per->at(1).find("alive")->asBool());
  EXPECT_EQ(Per->at(1).find("ranges_redispatched")->asInt(), 1);
}

//===----------------------------------------------------------------------===//
// Connect retry
//===----------------------------------------------------------------------===//

TEST(ConnectRetryTest, AbsorbsLateBindingAndFailsFastOtherwise) {
  // Reserve an ephemeral port, then free it for the late-starting daemon.
  uint16_t Port = 0;
  {
    ListenSocket Probe;
    ASSERT_TRUE(Probe.listenOn("127.0.0.1", 0));
    Port = Probe.port();
  }
  const std::string HostPort = "127.0.0.1:" + std::to_string(Port);

  // Nothing listening and a two-attempt budget: fails, not hangs.
  std::string Error;
  server::ConnectOptions FailFast;
  FailFast.Attempts = 2;
  FailFast.DelayMs = 10;
  FailFast.MaxDelayMs = 20;
  EXPECT_FALSE(server::DaemonClient::connectTo(HostPort, &Error, FailFast));
  EXPECT_FALSE(Error.empty());

  // The daemon binds the port only after the client began retrying; the
  // backoff loop must ride over the gap (this is the CI smoke's port
  // wait, exercised in-process).
  std::atomic<bool> Done{false};
  std::thread Late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    server::DaemonOptions Opts;
    Opts.Port = Port;
    TestDaemon Daemon(Opts);
    EXPECT_TRUE(Daemon.Started);
    while (!Done)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  server::ConnectOptions Patient;
  Patient.Attempts = 40;
  Patient.DelayMs = 25;
  Patient.MaxDelayMs = 100;
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(HostPort, &Error, Patient);
  EXPECT_TRUE(Client) << Error;
  if (Client) {
    EXPECT_TRUE(Client->health(&Error)) << Error;
  }
  Done = true;
  Late.join();
}

//===----------------------------------------------------------------------===//
// Artifact frames
//===----------------------------------------------------------------------===//

TEST(ArtifactFabricTest, ContentAddressedFetchRoundTripsAndRejects) {
  TaskSpec Spec = testSpec(3);
  std::string Error;
  std::optional<json::Value> SpecJson = Spec.toJson(&Error);
  ASSERT_TRUE(SpecJson) << Error;

  // The coordinator side: one solve, then export the warm set.
  SimulationService Origin;
  ASSERT_TRUE(Origin.prewarm(Spec, &Error)) << Error;
  std::optional<std::vector<TaskArtifact>> Artifacts =
      Origin.exportArtifacts(Spec, &Error);
  ASSERT_TRUE(Artifacts) << Error;
  ASSERT_FALSE(Artifacts->empty());

  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;

  for (const TaskArtifact &A : *Artifacts) {
    // Fresh daemon: probe misses, push stores, probe then hits, and the
    // fetched body is byte-identical to the origin's.
    std::optional<bool> Present = Client->probeArtifact(A.Key, &Error);
    ASSERT_TRUE(Present) << Error;
    EXPECT_FALSE(*Present);
    std::optional<bool> Stored =
        Client->putArtifact(*SpecJson, A.Key, A.Body, &Error);
    ASSERT_TRUE(Stored) << Error;
    EXPECT_TRUE(*Stored);
    Present = Client->probeArtifact(A.Key, &Error);
    ASSERT_TRUE(Present) << Error;
    EXPECT_TRUE(*Present);
    std::optional<std::string> Body = Client->getArtifact(A.Key, &Error);
    ASSERT_TRUE(Body) << Error;
    EXPECT_EQ(*Body, A.Body);
    // A second put is idempotent: the daemon reports it already held it.
    Stored = Client->putArtifact(*SpecJson, A.Key, A.Body, &Error);
    ASSERT_TRUE(Stored) << Error;
    EXPECT_FALSE(*Stored);
  }

  // Unknown key: a typed not-found error, never a hang or a compute.
  ArtifactKey Unknown = store::fidelityColumnsKey(0xDEADBEEF, 1.0, 2, 7);
  Error.clear();
  EXPECT_FALSE(Client->getArtifact(Unknown, &Error));
  EXPECT_NE(Error.find("not-found"), std::string::npos) << Error;
  // Probing the same key is not an error — just "not here".
  std::optional<bool> Probe = Client->probeArtifact(Unknown, &Error);
  ASSERT_TRUE(Probe) << Error;
  EXPECT_FALSE(*Probe);

  // A key that does not belong to the spec, and a corrupt body for a key
  // that does: both rejected, neither stored.
  Error.clear();
  EXPECT_FALSE(Client->putArtifact(*SpecJson, Unknown, "junk", &Error));
  EXPECT_NE(Error.find("does not belong"), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(
      Client->putArtifact(*SpecJson, Artifacts->front().Key, "junk", &Error));
  EXPECT_NE(Error.find("decode"), std::string::npos) << Error;

  // The connection survived every rejection.
  EXPECT_TRUE(Client->health(&Error)) << Error;

  // The worker daemon answered it all without performing a single solve.
  EXPECT_EQ(Daemon.Service.stats().GCSolveMisses, 0u);
}

TEST(ArtifactFabricTest, OversizedArtifactFrameIsCutOff) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<Socket> Sock =
      Socket::connectTo("127.0.0.1", Daemon.D.port(), &Error);
  ASSERT_TRUE(Sock) << Error;

  // An artifact-put whose body pushes the line past the request cap,
  // never newline-terminated. The daemon must answer "oversized" and
  // close (or just close if the send races its teardown).
  std::string Giant = "{\"v\":1,\"type\":\"artifact-put\",\"body\":\"";
  Giant.append(server::MaxRequestFrameBytes + (64u << 10), 'x');
  if (Sock->sendAll(Giant)) {
    std::string Line;
    if (Sock->readLine(Line, server::MaxResponseFrameBytes) ==
        Socket::ReadStatus::Line) {
      std::optional<Frame> F = server::decodeFrame(Line);
      ASSERT_TRUE(F);
      EXPECT_EQ(F->Type, "error");
      EXPECT_EQ(F->Body.find("code")->asString(), "oversized");
    }
  }
  Sock->close();

  // The daemon keeps serving other clients.
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;
  EXPECT_TRUE(Client->health(&Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Fleet dispatch
//===----------------------------------------------------------------------===//

TEST(FleetTest, TwoWorkersBitIdenticalWithOneSolveFleetWide) {
  TaskSpec Spec = testSpec(6);
  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  TestDaemon W1, W2;
  ASSERT_TRUE(W1.Started && W2.Started);

  ShardOptions Options;
  Options.ShardCount = 3; // more ranges than workers: the queue drains
  Options.WorkDir = freshDir("fleet_two_workers");
  Options.Workers = {W1.hostPort(), W2.hostPort()};
  ShardCoordinator Coordinator(Options);
  std::string Error;
  ShardReport Report;
  std::optional<TaskResult> Merged = Coordinator.run(Spec, &Error, &Report);
  ASSERT_TRUE(Merged) << Error;
  expectBitIdentical(*Single, *Merged);

  // One MCFP solve fleet-wide: the coordinator's prewarm performed it,
  // both workers were warmed over the wire and solved nothing.
  EXPECT_EQ(Report.LocalStats.GCSolveMisses, 1u);
  EXPECT_EQ(Report.WorkerStats.GCSolveMisses, 0u);
  EXPECT_EQ(W1.Service.stats().GCSolveMisses, 0u);
  EXPECT_EQ(W2.Service.stats().GCSolveMisses, 0u);

  // Fleet accounting: both workers alive, every range dispatched exactly
  // once, and the warm phase pushed bytes to both fresh daemons.
  ASSERT_TRUE(Report.Fleet.Used);
  ASSERT_EQ(Report.Fleet.Workers.size(), 2u);
  size_t Dispatched = 0;
  for (const FleetWorkerStats &WS : Report.Fleet.Workers) {
    EXPECT_TRUE(WS.Alive) << WS.HostPort;
    EXPECT_EQ(WS.RangesRedispatched, 0u);
    EXPECT_EQ(WS.FetchHits, 0u);
    EXPECT_GE(WS.FetchMisses, 1u);
    EXPECT_GT(WS.ArtifactBytesServed, 0u);
    Dispatched += WS.RangesDispatched;
  }
  EXPECT_EQ(Dispatched, 3u);
  EXPECT_EQ(Report.Retries, 0u);

  // The daemon-side fabric counters surfaced in the stats frame.
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(W1.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;
  std::optional<json::Value> Stats = Client->serverStats(&Error);
  ASSERT_TRUE(Stats) << Error;
  const json::Value *Fabric = Stats->find("fabric");
  ASSERT_NE(Fabric, nullptr);
  EXPECT_GE(Fabric->find("shard_submits")->asInt(), 1);
  EXPECT_EQ(Fabric->find("shard_results")->asInt(),
            Fabric->find("shard_submits")->asInt());
  EXPECT_GE(Fabric->find("artifact_puts")->asInt(), 1);
  EXPECT_GE(Fabric->find("artifact_misses")->asInt(), 1);
  EXPECT_GT(Fabric->find("artifact_bytes_in")->asInt(), 0);
}

TEST(FleetTest, SecondRunOverWarmWorkersFetchesNothing) {
  TaskSpec Spec = testSpec(4);
  TestDaemon W1, W2;
  ASSERT_TRUE(W1.Started && W2.Started);

  ShardOptions Options;
  Options.ShardCount = 2;
  Options.Workers = {W1.hostPort(), W2.hostPort()};

  Options.WorkDir = freshDir("fleet_warm_cold");
  ShardReport Cold;
  std::optional<TaskResult> First =
      ShardCoordinator(Options).run(Spec, nullptr, &Cold);
  ASSERT_TRUE(First);

  // A fresh work directory forces real re-dispatch, but the workers'
  // stores are warm now: every probe hits and no bytes move.
  Options.WorkDir = freshDir("fleet_warm_warm");
  ShardReport Warm;
  std::optional<TaskResult> Second =
      ShardCoordinator(Options).run(Spec, nullptr, &Warm);
  ASSERT_TRUE(Second);
  EXPECT_EQ(First->Batch.batchHash(), Second->Batch.batchHash());
  for (const FleetWorkerStats &WS : Warm.Fleet.Workers) {
    EXPECT_GE(WS.FetchHits, 1u) << WS.HostPort;
    EXPECT_EQ(WS.FetchMisses, 0u) << WS.HostPort;
    EXPECT_EQ(WS.ArtifactBytesServed, 0u) << WS.HostPort;
  }
  EXPECT_EQ(W1.Service.stats().GCSolveMisses, 0u);
  EXPECT_EQ(W2.Service.stats().GCSolveMisses, 0u);
}

TEST(FleetTest, DeadWorkerRangeIsRedispatchedToSurvivor) {
  TaskSpec Spec = testSpec(6);
  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  TestDaemon Survivor;
  ASSERT_TRUE(Survivor.Started);
  // Claims every artifact, accepts its first range, then drops the
  // connection with the range in flight — a worker killed mid-range.
  FakeWorker Doomed([](Socket &S, const Frame &F) {
    if (F.Type == "shard-submit") {
      S.sendAll(server::encodeFrame(
          "accepted", json::Value::object().set("id", 1)));
      return false; // hang up with the range in flight
    }
    return claimAllArtifacts(S, F);
  });

  ShardOptions Options;
  Options.ShardCount = 3;
  Options.WorkDir = freshDir("fleet_dead_worker");
  Options.Workers = {Survivor.hostPort(), Doomed.hostPort()};
  ShardCoordinator Coordinator(Options);
  std::string Error;
  ShardReport Report;
  std::optional<TaskResult> Merged = Coordinator.run(Spec, &Error, &Report);
  ASSERT_TRUE(Merged) << Error;
  expectBitIdentical(*Single, *Merged);

  // The fake worker was declared dead; the batch degraded to N-1 and the
  // survivor absorbed every range, including the re-dispatched one.
  ASSERT_EQ(Report.Fleet.Workers.size(), 2u);
  EXPECT_TRUE(Report.Fleet.Workers[0].Alive);
  EXPECT_FALSE(Report.Fleet.Workers[1].Alive);
  EXPECT_EQ(Report.Fleet.Workers[0].RangesDispatched, 3u);
  bool SawRedispatch = false;
  for (const std::string &Note : Report.Notes)
    SawRedispatch |=
        Note.find("re-dispatching range") != std::string::npos;
  EXPECT_TRUE(SawRedispatch) << "missing re-dispatch note";
}

TEST(FleetTest, CorruptShardResultIsRejectedAndReRun) {
  TaskSpec Spec = testSpec(6);
  SimulationService Reference;
  std::optional<TaskResult> Single = Reference.run(Spec);
  ASSERT_TRUE(Single);

  TestDaemon Honest;
  ASSERT_TRUE(Honest.Started);
  // Returns a well-framed shard-result whose manifest is garbage, once,
  // then hangs up. The coordinator must reject the manifest (attempt
  // charge), re-dispatch, and finish on the honest worker.
  std::atomic<int> Lies{0};
  FakeWorker Liar([&Lies](Socket &S, const Frame &F) {
    if (F.Type == "shard-submit") {
      ++Lies;
      S.sendAll(server::encodeFrame(
          "accepted", json::Value::object().set("id", 1)));
      S.sendAll(server::encodeFrame("shard-result",
                                    json::Value::object()
                                        .set("id", 1)
                                        .set("state", "done")
                                        .set("manifest", "garbage")));
      return false;
    }
    return claimAllArtifacts(S, F);
  });

  ShardOptions Options;
  Options.ShardCount = 3;
  Options.WorkDir = freshDir("fleet_corrupt_result");
  Options.Workers = {Honest.hostPort(), Liar.hostPort()};
  ShardCoordinator Coordinator(Options);
  std::string Error;
  ShardReport Report;
  std::optional<TaskResult> Merged = Coordinator.run(Spec, &Error, &Report);
  ASSERT_TRUE(Merged) << Error;
  expectBitIdentical(*Single, *Merged);
  EXPECT_EQ(Lies, 1);
  EXPECT_GE(Report.Retries, 1u);
  bool SawRejection = false;
  for (const std::string &Note : Report.Notes)
    SawRejection |=
        Note.find("re-dispatching the range") != std::string::npos;
  EXPECT_TRUE(SawRejection) << "missing corrupt-manifest rejection note";
}

TEST(FleetTest, FleetOfLiarsAbortsAfterBoundedAttempts) {
  TaskSpec Spec = testSpec(4);
  // The only worker keeps answering garbage manifests; the attempt
  // budget must end the batch instead of looping forever.
  FakeWorker Liar([](Socket &S, const Frame &F) {
    if (F.Type == "shard-submit") {
      S.sendAll(server::encodeFrame(
          "accepted", json::Value::object().set("id", 1)));
      return S.sendAll(server::encodeFrame("shard-result",
                                           json::Value::object()
                                               .set("id", 1)
                                               .set("state", "done")
                                               .set("manifest", "garbage")));
    }
    return claimAllArtifacts(S, F);
  });

  ShardOptions Options;
  Options.ShardCount = 1;
  Options.MaxAttempts = 2;
  Options.WorkDir = freshDir("fleet_liars_abort");
  Options.Workers = {Liar.hostPort()};
  std::string Error;
  EXPECT_FALSE(ShardCoordinator(Options).run(Spec, &Error));
  EXPECT_NE(Error.find("after 2 attempts"), std::string::npos) << Error;
}

TEST(FleetTest, NoLiveWorkersFailsInsteadOfHanging) {
  TaskSpec Spec = testSpec(3);
  // Both "workers" are ports nobody listens on; the connect retry budget
  // is spent quickly and the run must fail with a diagnosis, not hang.
  uint16_t Dead1 = 0, Dead2 = 0;
  {
    ListenSocket A, B;
    ASSERT_TRUE(A.listenOn("127.0.0.1", 0));
    ASSERT_TRUE(B.listenOn("127.0.0.1", 0));
    Dead1 = A.port();
    Dead2 = B.port();
  }
  ShardOptions Options;
  Options.ShardCount = 2;
  Options.WorkDir = freshDir("fleet_all_dead");
  Options.Workers = {"127.0.0.1:" + std::to_string(Dead1),
                     "127.0.0.1:" + std::to_string(Dead2)};
  Options.ConnectAttempts = 2;
  Options.ConnectDelayMs = 10;
  std::string Error;
  ShardReport Report;
  EXPECT_FALSE(ShardCoordinator(Options).run(Spec, &Error, &Report));
  EXPECT_NE(Error.find("no live workers remain"), std::string::npos)
      << Error;
  for (const FleetWorkerStats &WS : Report.Fleet.Workers)
    EXPECT_FALSE(WS.Alive);
}
