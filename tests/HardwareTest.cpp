//===- tests/HardwareTest.cpp - topology-aware cost tests ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CNOTCountOracle.h"
#include "core/HardwareCost.h"
#include "hamgen/Models.h"

#include <gtest/gtest.h>

using namespace marqsim;

TEST(DeviceTopologyTest, LineDistances) {
  DeviceTopology Line = DeviceTopology::line(5);
  EXPECT_EQ(Line.distance(0, 0), 0u);
  EXPECT_EQ(Line.distance(0, 1), 1u);
  EXPECT_EQ(Line.distance(0, 4), 4u);
  EXPECT_EQ(Line.distance(4, 0), 4u);
  EXPECT_EQ(Line.distance(2, 3), 1u);
}

TEST(DeviceTopologyTest, RingShortcuts) {
  DeviceTopology Ring = DeviceTopology::ring(6);
  EXPECT_EQ(Ring.distance(0, 5), 1u); // around the back
  EXPECT_EQ(Ring.distance(0, 3), 3u); // diameter
  EXPECT_EQ(Ring.distance(1, 5), 2u);
}

TEST(DeviceTopologyTest, GridManhattanDistances) {
  DeviceTopology Grid = DeviceTopology::grid(3, 4);
  EXPECT_EQ(Grid.numQubits(), 12u);
  // (0,0) -> (2,3): 2 + 3 hops.
  EXPECT_EQ(Grid.distance(0, 2 * 4 + 3), 5u);
  // Neighbours.
  EXPECT_EQ(Grid.distance(0, 1), 1u);
  EXPECT_EQ(Grid.distance(0, 4), 1u);
}

TEST(DeviceTopologyTest, FullyConnectedIsAllOnes) {
  DeviceTopology Full = DeviceTopology::fullyConnected(6);
  for (unsigned A = 0; A < 6; ++A)
    for (unsigned B = 0; B < 6; ++B)
      EXPECT_EQ(Full.distance(A, B), A == B ? 0u : 1u);
}

TEST(DeviceTopologyTest, RoutedCostModel) {
  DeviceTopology Line = DeviceTopology::line(5);
  EXPECT_EQ(Line.routedCNOTCost(1, 2), 1u);      // adjacent
  EXPECT_EQ(Line.routedCNOTCost(0, 2), 4u);      // 3*(2-1)+1
  EXPECT_EQ(Line.routedCNOTCost(0, 4), 10u);     // 3*(4-1)+1
}

TEST(HardwareCostTest, ReducesToPlainOracleWhenFullyConnected) {
  RNG Rng(121);
  DeviceTopology Full = DeviceTopology::fullyConnected(6);
  Hamiltonian H = makeRandomHamiltonian(6, 20, Rng);
  for (size_t I = 0; I < H.numTerms(); ++I)
    for (size_t J = 0; J < H.numTerms(); ++J) {
      unsigned Plain =
          cnotCountBetween(H.term(I).String, H.term(J).String);
      unsigned Routed = hardwareCNOTCostBetween(H.term(I).String,
                                                H.term(J).String, Full);
      ASSERT_EQ(Plain, Routed) << "pair " << I << "," << J;
    }
}

TEST(HardwareCostTest, LineTopologyNeverCheaper) {
  RNG Rng(122);
  DeviceTopology Line = DeviceTopology::line(6);
  Hamiltonian H = makeRandomHamiltonian(6, 15, Rng);
  for (size_t I = 0; I < H.numTerms(); ++I)
    for (size_t J = 0; J < H.numTerms(); ++J) {
      unsigned Plain =
          cnotCountBetween(H.term(I).String, H.term(J).String);
      unsigned Routed = hardwareCNOTCostBetween(H.term(I).String,
                                                H.term(J).String, Line);
      ASSERT_GE(Routed, Plain);
    }
}

TEST(HardwareCostTest, IdenticalStringsStillFree) {
  DeviceTopology Line = DeviceTopology::line(4);
  auto P = *PauliString::parse("XXYY");
  EXPECT_EQ(hardwareCNOTCostBetween(P, P, Line), 0u);
}

TEST(HardwareCostTest, HardwareAwareMatrixIsValid) {
  RNG Rng(123);
  Hamiltonian H = makeRandomHamiltonian(5, 14, Rng).splitLargeTerms();
  DeviceTopology Line = DeviceTopology::line(5);
  TransitionMatrix Phw = buildHardwareAwareGC(H, Line);
  std::vector<double> Pi = H.stationaryDistribution();
  EXPECT_TRUE(Phw.isRowStochastic(1e-7));
  EXPECT_TRUE(Phw.preservesDistribution(Pi, 1e-6));
  TransitionMatrix Mixed = combineWithQDrift(H, Phw, 0.4);
  EXPECT_TRUE(Mixed.isStronglyConnected());
}

TEST(HardwareCostTest, HardwareAwareBeatsPlainGCOnRoutedMetric) {
  // On a line topology, optimizing for routed cost must give expected
  // routed cost <= the matrix optimized for the naive count (both are
  // feasible points of the same flow polytope).
  RNG Rng(124);
  Hamiltonian H = makeRandomHamiltonian(6, 24, Rng).splitLargeTerms();
  DeviceTopology Line = DeviceTopology::line(6);
  std::vector<double> Pi = H.stationaryDistribution();
  TransitionMatrix Phw = buildHardwareAwareGC(H, Line);
  TransitionMatrix Pgc = buildGateCancellation(H);
  double RoutedHw = expectedHardwareCNOTs(H, Phw, Pi, Line);
  double RoutedGc = expectedHardwareCNOTs(H, Pgc, Pi, Line);
  EXPECT_LE(RoutedHw, RoutedGc + 1e-6);
}

TEST(HardwareCostTest, GenericCostTableBuilderMatchesGC) {
  RNG Rng(125);
  Hamiltonian H = makeRandomHamiltonian(4, 10, Rng).splitLargeTerms();
  auto Plain = cnotCostTable(H);
  std::vector<std::vector<int64_t>> Cost(H.numTerms(),
                                         std::vector<int64_t>(H.numTerms()));
  MCFPOptions Opts;
  for (size_t I = 0; I < H.numTerms(); ++I)
    for (size_t J = 0; J < H.numTerms(); ++J)
      Cost[I][J] = Opts.CostScale * static_cast<int64_t>(Plain[I][J]);
  TransitionMatrix A = buildGateCancellation(H, Opts);
  TransitionMatrix B = buildFromCostTable(H, Cost, Opts);
  for (size_t I = 0; I < H.numTerms(); ++I)
    for (size_t J = 0; J < H.numTerms(); ++J)
      ASSERT_NEAR(A.at(I, J), B.at(I, J), 1e-12);
}
