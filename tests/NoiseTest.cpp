//===- tests/NoiseTest.cpp - Noisy-simulation workload tier -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contracts of the noise tier (sim/NoiseModel.h):
//   * every Kraus set — exact and twirled — satisfies sum K^dag K = I and
//     preserves the trace through DensityMatrix::applyChannel,
//   * the stochastic tier's injection is a pure function of the RNG
//     stream (same draws -> same schedule, noiseless schedule embedded as
//     an ordered subsequence),
//   * the *exact* expectation of the injected state fidelity over all
//     error patterns equals the density oracle, and the composed
//     superoperator agrees with direct density evolution,
//   * noisy batches are bit-identical across --jobs/--eval-jobs values
//     and across shard splits (in-process runShard + merge),
//   * superoperators round-trip through the marqsim-super-v1 codec and
//     the on-disk store, and corruption falls back to recomposition,
//   * a frozen fixed-seed golden pins the noisy fidelity bits and the
//     invariant that noise never perturbs the compiled circuits.
//
//===----------------------------------------------------------------------===//

#include "service/SimulationService.h"
#include "shard/ShardCoordinator.h"
#include "shard/ShardManifest.h"
#include "sim/DensityMatrix.h"
#include "sim/Fidelity.h"
#include "sim/NoiseModel.h"
#include "store/Codecs.h"
#include "support/Serial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

using namespace marqsim;

namespace {

constexpr double HalfPi = 1.5707963267948966;

/// A 3-qubit Hamiltonian small enough for the density oracle and the
/// superoperator cache, interacting enough to produce non-trivial
/// schedules.
Hamiltonian noiseHamiltonian() {
  return Hamiltonian::parse({{0.9, "XZI"},
                             {0.6, "IYX"},
                             {0.5, "ZIZ"},
                             {0.3, "YXI"}});
}

/// A noisy sampling spec over the 3-qubit operator.
TaskSpec noisySamplingSpec() {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(noiseHamiltonian());
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.5;
  Spec.Epsilon = 0.3;
  Spec.Shots = 6;
  Spec.Seed = 20240;
  Spec.Evaluate.FidelityColumns = 4;
  Spec.Noise.Kind = NoiseChannelKind::Depolarizing;
  Spec.Noise.Prob = 0.02;
  Spec.Noise.TwoQubitFactor = 1.5;
  return Spec;
}

/// A deterministic Trotter spec (the superoperator-cache path).
TaskSpec noisyTrotterSpec() {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(noiseHamiltonian());
  Spec.Method = TaskMethod::Trotter;
  Spec.Time = 0.4;
  Spec.TrotterReps = 2;
  Spec.TrotterOrder = 1;
  Spec.Shots = 1;
  Spec.Seed = 7;
  Spec.Evaluate.FidelityColumns = 6;
  Spec.Noise.Kind = NoiseChannelKind::AmplitudeDamping;
  Spec.Noise.Prob = 0.05;
  Spec.Noise.Mode = NoiseMode::Density;
  return Spec;
}

PauliString makeString(std::initializer_list<std::pair<unsigned, PauliOpKind>>
                           Ops) {
  PauliString P;
  for (const auto &[Q, K] : Ops)
    P.setOp(Q, K);
  return P;
}

/// A short 2-qubit schedule with four error slots (4^4 = 256 patterns —
/// exhaustively enumerable).
std::vector<ScheduledRotation> tinySchedule() {
  return {{makeString({{0, PauliOpKind::X}, {1, PauliOpKind::Y}}), 0.3},
          {makeString({{0, PauliOpKind::Z}}), 0.7},
          {makeString({{1, PauliOpKind::X}}), 0.2}};
}

/// The exact expectation of the stochastic tier: enumerate every error
/// pattern (one {I, X, Y, Z} outcome per support qubit per rotation, in
/// injection order) with its twirl probability and average the state
/// fidelity of the resulting schedules.
double enumeratedExpectation(const NoiseModel &Model,
                             const std::vector<ScheduledRotation> &Schedule,
                             const FidelityEvaluator &Eval) {
  struct Slot {
    size_t Step;
    unsigned Qubit;
    PauliTwirlWeights W;
  };
  std::vector<Slot> Slots;
  for (size_t S = 0; S < Schedule.size(); ++S) {
    PauliTwirlWeights W =
        Model.twirlWeights(Model.effectiveProb(Schedule[S].String.weight()));
    uint64_t Support = Schedule[S].String.supportMask();
    for (unsigned Q = 0; Support != 0; ++Q, Support >>= 1)
      if (Support & 1)
        Slots.push_back({S, Q, W});
  }
  const size_t Patterns = size_t(1) << (2 * Slots.size());
  double Acc = 0.0;
  for (size_t Pattern = 0; Pattern < Patterns; ++Pattern) {
    double Prob = 1.0;
    std::vector<ScheduledRotation> Noisy;
    size_t SlotIdx = 0;
    for (size_t S = 0; S < Schedule.size(); ++S) {
      Noisy.push_back(Schedule[S]);
      for (; SlotIdx < Slots.size() && Slots[SlotIdx].Step == S; ++SlotIdx) {
        const Slot &Sl = Slots[SlotIdx];
        const unsigned Outcome = (Pattern >> (2 * SlotIdx)) & 3;
        static constexpr PauliOpKind Errs[] = {PauliOpKind::I, PauliOpKind::X,
                                               PauliOpKind::Y, PauliOpKind::Z};
        const double P[] = {1.0 - Sl.W.total(), Sl.W.PX, Sl.W.PY, Sl.W.PZ};
        Prob *= P[Outcome];
        if (Outcome != 0)
          Noisy.emplace_back(makeString({{Sl.Qubit, Errs[Outcome]}}), HalfPi);
      }
      if (Prob == 0.0)
        break;
    }
    if (Prob == 0.0)
      continue;
    Acc += Prob * Eval.stateFidelity(Noisy);
  }
  return Acc;
}

std::string freshDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::filesystem::path onlyFile(const std::string &Dir,
                               const std::string &Extension) {
  std::filesystem::path Found;
  size_t Count = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == Extension) {
      Found = Entry.path();
      ++Count;
    }
  EXPECT_EQ(Count, 1u) << "expected exactly one " << Extension << " file";
  return Found;
}

std::string readAll(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void flipOneChar(const std::filesystem::path &P) {
  std::string Text = readAll(P);
  ASSERT_FALSE(Text.empty());
  size_t Mid = Text.size() / 2;
  Text[Mid] = Text[Mid] == 'a' ? 'b' : 'a';
  std::ofstream Out(P);
  Out << Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// Channel algebra
//===----------------------------------------------------------------------===//

TEST(NoiseModelTest, NamesRoundTripAndRejectUnknown) {
  for (NoiseChannelKind K :
       {NoiseChannelKind::None, NoiseChannelKind::Depolarizing,
        NoiseChannelKind::PhaseFlip, NoiseChannelKind::AmplitudeDamping})
    EXPECT_EQ(parseNoiseChannel(noiseChannelName(K)), K);
  EXPECT_FALSE(parseNoiseChannel("bitflip"));
  for (NoiseMode M : {NoiseMode::Stochastic, NoiseMode::Density})
    EXPECT_EQ(parseNoiseMode(noiseModeName(M)), M);
  EXPECT_FALSE(parseNoiseMode("exact"));
}

TEST(NoiseModelTest, KrausSetsResolveIdentity) {
  for (NoiseChannelKind K :
       {NoiseChannelKind::Depolarizing, NoiseChannelKind::PhaseFlip,
        NoiseChannelKind::AmplitudeDamping})
    for (double P : {0.0, 0.03, 0.4, 1.0}) {
      NoiseSpec Spec;
      Spec.Kind = K;
      Spec.Prob = P;
      NoiseModel Model(Spec);
      for (const std::vector<Matrix> &Set :
           {Model.krausOperators(P), Model.twirledKraus(P)}) {
        Matrix Sum(2, 2);
        for (const Matrix &Kr : Set)
          Sum += Kr.adjoint() * Kr;
        for (size_t I = 0; I < 2; ++I)
          for (size_t J = 0; J < 2; ++J) {
            EXPECT_NEAR(Sum.at(I, J).real(), I == J ? 1.0 : 0.0, 1e-12)
                << noiseChannelName(K) << " p=" << P;
            EXPECT_NEAR(Sum.at(I, J).imag(), 0.0, 1e-12);
          }
      }
    }
}

TEST(NoiseModelTest, TwirlWeightsMatchClosedForms) {
  NoiseSpec Spec;
  Spec.Kind = NoiseChannelKind::Depolarizing;
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).twirlWeights(0.3).PX, 0.1);
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).twirlWeights(0.3).PY, 0.1);
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).twirlWeights(0.3).PZ, 0.1);

  Spec.Kind = NoiseChannelKind::PhaseFlip;
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).twirlWeights(0.25).PZ, 0.25);
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).twirlWeights(0.25).PX, 0.0);

  Spec.Kind = NoiseChannelKind::AmplitudeDamping;
  const double G = 0.2;
  PauliTwirlWeights W = NoiseModel(Spec).twirlWeights(G);
  EXPECT_DOUBLE_EQ(W.PX, G / 4.0);
  EXPECT_DOUBLE_EQ(W.PY, G / 4.0);
  EXPECT_DOUBLE_EQ(W.PZ, (2.0 - G - 2.0 * std::sqrt(1.0 - G)) / 4.0);
  EXPECT_GE(W.PZ, 0.0);
  EXPECT_LE(W.total(), 1.0);
}

TEST(NoiseModelTest, EffectiveProbScalesMultiQubitAndCaps) {
  NoiseSpec Spec;
  Spec.Kind = NoiseChannelKind::Depolarizing;
  Spec.Prob = 0.3;
  Spec.TwoQubitFactor = 2.0;
  NoiseModel Model(Spec);
  EXPECT_DOUBLE_EQ(Model.effectiveProb(0), 0.0); // identity rotations
  EXPECT_DOUBLE_EQ(Model.effectiveProb(1), 0.3);
  EXPECT_DOUBLE_EQ(Model.effectiveProb(2), 0.6);
  EXPECT_DOUBLE_EQ(Model.effectiveProb(3), 0.6);

  Spec.Prob = 0.8;
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).effectiveProb(2), 1.0); // capped

  Spec.Kind = NoiseChannelKind::None;
  EXPECT_DOUBLE_EQ(NoiseModel(Spec).effectiveProb(1), 0.0);
}

//===----------------------------------------------------------------------===//
// DensityMatrix channel support and argument validation
//===----------------------------------------------------------------------===//

TEST(DensityChannelTest, ApplyChannelPreservesTraceAndMixesState) {
  NoiseSpec Spec;
  Spec.Kind = NoiseChannelKind::AmplitudeDamping;
  NoiseModel Model(Spec);

  DensityMatrix Rho(2, 3); // |11><11|
  Rho.applyChannel(Model.krausOperators(0.3), 0);
  EXPECT_NEAR(Rho.trace(), 1.0, 1e-12);
  // Damping moved 0.3 of the qubit-0 excitation to |10><10|.
  EXPECT_NEAR(Rho.matrix().at(2, 2).real(), 0.3, 1e-12);
  EXPECT_NEAR(Rho.matrix().at(3, 3).real(), 0.7, 1e-12);

  // A full damp (gamma = 1) resets the qubit to |0>.
  Rho.applyChannel(Model.krausOperators(1.0), 0);
  EXPECT_NEAR(Rho.matrix().at(2, 2).real(), 1.0, 1e-12);
}

TEST(DensityChannelTest, ApplyChannelValidatesArguments) {
  DensityMatrix Rho(2);
  EXPECT_THROW(Rho.applyChannel({}, 0), std::invalid_argument);
  EXPECT_THROW(Rho.applyChannel({Matrix(3, 3)}, 0), std::invalid_argument);
  EXPECT_THROW(Rho.applyChannel({Matrix::identity(2)}, 2),
               std::invalid_argument);
  // A non-trace-preserving set is caught by the trace-drift check.
  Matrix Half = Matrix::identity(2) * Complex(0.5, 0.0);
  EXPECT_THROW(Rho.applyChannel({Half}, 0), std::runtime_error);
}

TEST(DensityChannelTest, SamplingChannelAndTraceDistanceValidateArguments) {
  Hamiltonian H = noiseHamiltonian();
  DensityMatrix Rho(H.numQubits());
  // One probability too few for the term count.
  std::vector<double> Pi(H.numTerms() - 1, 1.0 / double(H.numTerms() - 1));
  EXPECT_THROW(Rho.applySamplingChannel(H, Pi, 0.1), std::invalid_argument);

  DensityMatrix Other(H.numQubits() + 1);
  EXPECT_THROW(Rho.traceDistance(Other), std::invalid_argument);
}

//===----------------------------------------------------------------------===//
// Stochastic injection
//===----------------------------------------------------------------------===//

TEST(NoiseInjectionTest, DeterministicAndPrefixPreserving) {
  NoiseSpec Spec;
  Spec.Kind = NoiseChannelKind::Depolarizing;
  Spec.Prob = 0.5; // high rate so the test schedule actually gains errors
  NoiseModel Model(Spec);
  std::vector<ScheduledRotation> Schedule = tinySchedule();

  RNG A = RNG::forShot(NoiseModel::noiseStreamSeed(99), 3);
  RNG B = RNG::forShot(NoiseModel::noiseStreamSeed(99), 3);
  std::vector<ScheduledRotation> NoisyA = Model.injectErrors(Schedule, A);
  std::vector<ScheduledRotation> NoisyB = Model.injectErrors(Schedule, B);
  ASSERT_EQ(NoisyA.size(), NoisyB.size());
  for (size_t I = 0; I < NoisyA.size(); ++I) {
    EXPECT_EQ(NoisyA[I].String, NoisyB[I].String);
    EXPECT_EQ(NoisyA[I].Tau, NoisyB[I].Tau);
  }

  // The noiseless schedule is an ordered subsequence; every injected
  // rotation is a single-qubit pi/2 Pauli.
  size_t Orig = 0;
  for (const ScheduledRotation &Step : NoisyA) {
    if (Orig < Schedule.size() && Step.String == Schedule[Orig].String &&
        Step.Tau == Schedule[Orig].Tau) {
      ++Orig;
      continue;
    }
    EXPECT_EQ(Step.String.weight(), 1u);
    EXPECT_EQ(Step.Tau, HalfPi);
  }
  EXPECT_EQ(Orig, Schedule.size());

  // Different shots draw different errors (with overwhelming probability
  // at this rate and schedule size).
  RNG C = RNG::forShot(NoiseModel::noiseStreamSeed(99), 4);
  std::vector<ScheduledRotation> NoisyC = Model.injectErrors(Schedule, C);
  bool Differs = NoisyC.size() != NoisyA.size();
  for (size_t I = 0; !Differs && I < NoisyA.size(); ++I)
    Differs = !(NoisyA[I].String == NoisyC[I].String);
  EXPECT_TRUE(Differs);

  // A disabled channel injects nothing.
  NoiseSpec Off;
  Off.Kind = NoiseChannelKind::Depolarizing;
  Off.Prob = 0.0;
  RNG D = RNG::forShot(1, 1);
  EXPECT_EQ(NoiseModel(Off).injectErrors(Schedule, D).size(), Schedule.size());
}

//===----------------------------------------------------------------------===//
// Stochastic expectation == density oracle == superoperator
//===----------------------------------------------------------------------===//

TEST(NoiseOracleTest, ExactExpectationMatchesDensityOracle) {
  Hamiltonian H2 = Hamiltonian::parse({{0.8, "XY"}, {0.5, "ZI"}});
  FidelityEvaluator Eval(H2, 0.5, 4, 11); // 4 columns = exact at n=2
  std::vector<ScheduledRotation> Schedule = tinySchedule();

  for (NoiseChannelKind K :
       {NoiseChannelKind::Depolarizing, NoiseChannelKind::PhaseFlip,
        NoiseChannelKind::AmplitudeDamping}) {
    NoiseSpec Spec;
    Spec.Kind = K;
    Spec.Prob = 0.15;
    Spec.TwoQubitFactor = 1.4;
    NoiseModel Model(Spec);

    const double Oracle = Model.densityFidelity(Schedule, 2, Eval);
    const double Expect = enumeratedExpectation(Model, Schedule, Eval);
    EXPECT_NEAR(Expect, Oracle, 1e-10) << noiseChannelName(K);

    const double Super = Model.densityFidelityFromSuper(
        Model.buildSuperoperator(Schedule, 2), Eval);
    EXPECT_NEAR(Super, Oracle, 1e-10) << noiseChannelName(K);
  }
}

TEST(NoiseOracleTest, SuperoperatorRejectsDimensionMismatch) {
  NoiseSpec Spec;
  Spec.Kind = NoiseChannelKind::PhaseFlip;
  Spec.Prob = 0.1;
  NoiseModel Model(Spec);
  Hamiltonian H2 = Hamiltonian::parse({{0.8, "XY"}, {0.5, "ZI"}});
  FidelityEvaluator Eval(H2, 0.5, 4, 11);
  EXPECT_THROW(Model.densityFidelityFromSuper(Matrix::identity(8), Eval),
               std::invalid_argument);
}

TEST(NoiseServiceTest, StochasticMeanConvergesToDensityOracle) {
  // The same deterministic Trotter schedule under both modes: the
  // stochastic tier's mean over many shots must approach the density
  // oracle's exact expectation.
  TaskSpec Density = noisyTrotterSpec();
  TaskSpec Stochastic = Density;
  Stochastic.Noise.Mode = NoiseMode::Stochastic;
  Stochastic.Shots = 400;
  Stochastic.Jobs = 4;

  SimulationService Service;
  std::string Error;
  std::optional<TaskResult> D = Service.run(Density, &Error);
  ASSERT_TRUE(D) << Error;
  std::optional<TaskResult> S = Service.run(Stochastic, &Error);
  ASSERT_TRUE(S) << Error;

  ASSERT_TRUE(D->HasFidelity);
  ASSERT_TRUE(S->HasFidelity);
  // 400 samples of a [0, 1] quantity: a 0.05 tolerance is > 2 sigma of
  // headroom at the observed spread.
  EXPECT_NEAR(S->Fidelity.Mean, D->ShotFidelities[0], 0.05);
  // The oracle itself sits below the noiseless fidelity: noise must cost.
  TaskSpec Clean = Density;
  Clean.Noise = NoiseSpec();
  std::optional<TaskResult> C = Service.run(Clean, &Error);
  ASSERT_TRUE(C) << Error;
  EXPECT_LT(D->ShotFidelities[0], C->ShotFidelities[0]);
}

//===----------------------------------------------------------------------===//
// Bit-identity across jobs and shards
//===----------------------------------------------------------------------===//

TEST(NoiseServiceTest, NoisyBatchIsBitIdenticalAcrossJobCounts) {
  TaskSpec Spec = noisySamplingSpec();
  SimulationService Service;
  std::string Error;
  std::optional<TaskResult> Base = Service.run(Spec, &Error);
  ASSERT_TRUE(Base) << Error;
  ASSERT_TRUE(Base->HasFidelity);

  for (auto [Jobs, EvalJobs] : {std::pair<unsigned, unsigned>{4, 1},
                                {1, 2},
                                {4, 2}}) {
    TaskSpec Alt = Spec;
    Alt.Jobs = Jobs;
    Alt.EvalJobs = EvalJobs;
    std::optional<TaskResult> R = Service.run(Alt, &Error);
    ASSERT_TRUE(R) << Error;
    EXPECT_EQ(R->Batch.batchHash(), Base->Batch.batchHash());
    ASSERT_EQ(R->ShotFidelities.size(), Base->ShotFidelities.size());
    for (size_t I = 0; I < R->ShotFidelities.size(); ++I)
      EXPECT_EQ(serial::doubleBits(R->ShotFidelities[I]),
                serial::doubleBits(Base->ShotFidelities[I]))
          << "jobs=" << Jobs << " eval-jobs=" << EvalJobs << " shot " << I;
  }
}

TEST(NoiseShardTest, ShardedNoisyRunMatchesSingleProcess) {
  TaskSpec Spec = noisySamplingSpec();
  SimulationService Service;
  std::string Error;
  std::optional<TaskResult> Full = Service.run(Spec, &Error);
  ASSERT_TRUE(Full) << Error;

  // In-process shard split: run each range, serialize/parse the manifest
  // (the exact file round trip the coordinator performs), then merge.
  std::vector<ShardManifest> Manifests;
  for (unsigned I = 0; I < 3; ++I) {
    std::optional<ShardManifest> M =
        ShardCoordinator::runShard(Service, Spec, I, 3, &Error);
    ASSERT_TRUE(M) << Error;
    EXPECT_EQ(M->Noise.Kind, Spec.Noise.Kind);
    std::optional<ShardManifest> Back =
        ShardManifest::parse(M->serialize(), &Error);
    ASSERT_TRUE(Back) << Error;
    EXPECT_EQ(Back->Noise.Kind, Spec.Noise.Kind);
    EXPECT_EQ(serial::doubleBits(Back->Noise.Prob),
              serial::doubleBits(Spec.Noise.Prob));
    EXPECT_EQ(serial::doubleBits(Back->Noise.TwoQubitFactor),
              serial::doubleBits(Spec.Noise.TwoQubitFactor));
    EXPECT_EQ(Back->Noise.Mode, Spec.Noise.Mode);
    Manifests.push_back(std::move(*Back));
  }
  std::optional<TaskResult> Merged =
      ShardCoordinator::merge(Spec, Full->Fingerprint, std::move(Manifests),
                              &Error);
  ASSERT_TRUE(Merged) << Error;
  EXPECT_EQ(Merged->Batch.batchHash(), Full->Batch.batchHash());
  ASSERT_EQ(Merged->ShotFidelities.size(), Full->ShotFidelities.size());
  for (size_t I = 0; I < Full->ShotFidelities.size(); ++I)
    EXPECT_EQ(serial::doubleBits(Merged->ShotFidelities[I]),
              serial::doubleBits(Full->ShotFidelities[I]))
        << "shot " << I;
}

//===----------------------------------------------------------------------===//
// Superoperator store type
//===----------------------------------------------------------------------===//

TEST(NoiseStoreTest, SuperBodyRoundTripsBitExactly) {
  NoiseSpec Spec;
  Spec.Kind = NoiseChannelKind::AmplitudeDamping;
  Spec.Prob = 0.17;
  NoiseModel Model(Spec);
  Matrix S = Model.buildSuperoperator(tinySchedule(), 2);

  std::string Body = store::encodeSuperBody(S);
  std::optional<Matrix> Back = store::decodeSuperBody(16, Body);
  ASSERT_TRUE(Back);
  ASSERT_EQ(Back->rows(), S.rows());
  for (size_t I = 0; I < S.rows(); ++I)
    for (size_t J = 0; J < S.cols(); ++J) {
      EXPECT_EQ(serial::doubleBits(S.at(I, J).real()),
                serial::doubleBits(Back->at(I, J).real()));
      EXPECT_EQ(serial::doubleBits(S.at(I, J).imag()),
                serial::doubleBits(Back->at(I, J).imag()));
    }
  // Stale dimension and trailing garbage are rejected.
  EXPECT_FALSE(store::decodeSuperBody(64, Body));
  EXPECT_FALSE(store::decodeSuperBody(16, Body + "junk"));
}

TEST(NoiseStoreTest, SuperoperatorPersistsAndHealsOnCorruption) {
  std::string Dir = freshDir("noise_super_store");
  ServiceOptions Options;
  Options.CacheDir = Dir;
  TaskSpec Spec = noisyTrotterSpec();

  std::optional<TaskResult> Cold;
  {
    SimulationService Service(Options);
    std::string Error;
    Cold = Service.run(Spec, &Error);
    ASSERT_TRUE(Cold) << Error;
    EXPECT_EQ(Service.stats().SuperMisses, 1u);
    EXPECT_EQ(Service.stats().SuperHits, 0u);
  }
  std::filesystem::path Super = onlyFile(Dir, ".super");
  const std::string Healthy = readAll(Super);

  // A fresh service replays the superoperator from disk bit-identically.
  {
    SimulationService Warm(Options);
    std::optional<TaskResult> R = Warm.run(Spec);
    ASSERT_TRUE(R);
    EXPECT_EQ(Warm.stats().SuperHits, 1u);
    EXPECT_EQ(Warm.stats().SuperMisses, 0u);
    EXPECT_EQ(serial::doubleBits(R->ShotFidelities[0]),
              serial::doubleBits(Cold->ShotFidelities[0]));
  }

  // Corruption falls back to recomposition and heals the file.
  flipOneChar(Super);
  {
    SimulationService Service(Options);
    std::optional<TaskResult> R = Service.run(Spec);
    ASSERT_TRUE(R);
    EXPECT_EQ(Service.stats().SuperMisses, 1u);
    EXPECT_EQ(serial::doubleBits(R->ShotFidelities[0]),
              serial::doubleBits(Cold->ShotFidelities[0]));
  }
  EXPECT_EQ(readAll(Super), Healthy);
}

//===----------------------------------------------------------------------===//
// Frozen golden
//===----------------------------------------------------------------------===//

TEST(NoiseGoldenTest, FixedSeedNoisyBatchIsFrozen) {
  // The noise stream is decoupled from the sampling stream, so a noisy
  // batch compiles the *same circuits* as its noiseless twin — only the
  // fidelities differ. Both halves are pinned: the shared batch hash and
  // the exact bits of the noisy fidelities. A change to either breaks
  // the cross-version determinism contract, not just a tolerance.
  TaskSpec Spec = noisySamplingSpec();
  Spec.Shots = 3;
  SimulationService Service;
  std::string Error;
  std::optional<TaskResult> Noisy = Service.run(Spec, &Error);
  ASSERT_TRUE(Noisy) << Error;

  TaskSpec Clean = Spec;
  Clean.Noise = NoiseSpec();
  std::optional<TaskResult> Noiseless = Service.run(Clean, &Error);
  ASSERT_TRUE(Noiseless) << Error;
  EXPECT_EQ(Noisy->Batch.batchHash(), Noiseless->Batch.batchHash());

  ASSERT_EQ(Noisy->ShotFidelities.size(), 3u);
  // Frozen with the repository's fixed seeds: any change to the RNG
  // streams, twirl weights, injection order, or state-fidelity reduction
  // shows up here as a bit difference, not a drifting tolerance.
  const uint64_t Golden[3] = {
      0x3fed2c21952a0aaaULL,
      0x3fa8f2d48bdd408cULL,
      0x3fef577a168e724fULL,
  };
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(serial::doubleBits(Noisy->ShotFidelities[I]), Golden[I])
        << "shot " << I << " = " << serial::hex16(serial::doubleBits(
                                         Noisy->ShotFidelities[I]));
}
