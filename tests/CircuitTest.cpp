//===- tests/CircuitTest.cpp - circuit IR / synthesis / optimizer tests --------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Circuit.h"
#include "circuit/Optimizer.h"
#include "circuit/PauliEvolution.h"
#include "circuit/QasmExport.h"
#include "linalg/Expm.h"
#include "sim/StateVector.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace marqsim;

TEST(CircuitTest, AppendAndCounts) {
  Circuit C(3);
  C.h(0);
  C.cnot(0, 1);
  C.rz(2, 0.5);
  C.cnot(1, 2);
  GateCounts Counts = C.counts();
  EXPECT_EQ(Counts.CNOTs, 2u);
  EXPECT_EQ(Counts.SingleQubit, 2u);
  EXPECT_EQ(Counts.total(), 4u);
}

TEST(CircuitTest, GateOverlap) {
  Gate H(GateKind::H, 1);
  Gate Cx = Gate::cnot(0, 1);
  Gate Cx2 = Gate::cnot(2, 3);
  EXPECT_TRUE(H.overlaps(Cx));
  EXPECT_FALSE(H.overlaps(Cx2));
  EXPECT_TRUE(Cx.overlaps(Cx));
}

TEST(CircuitTest, TextualListing) {
  Circuit C(2);
  C.h(0);
  C.cnot(0, 1);
  C.rz(1, 0.25);
  std::string S = C.str();
  EXPECT_NE(S.find("h q0"), std::string::npos);
  EXPECT_NE(S.find("cx q0, q1"), std::string::npos);
  EXPECT_NE(S.find("rz("), std::string::npos);
}

TEST(CircuitTest, DepthOfSerialAndParallelGates) {
  Circuit Serial(1);
  Serial.h(0);
  Serial.s(0);
  Serial.rz(0, 0.5);
  EXPECT_EQ(Serial.depth(), 3u);

  Circuit Parallel(3);
  Parallel.h(0);
  Parallel.h(1);
  Parallel.h(2);
  EXPECT_EQ(Parallel.depth(), 1u);

  Circuit Mixed(3);
  Mixed.h(0);          // layer 1 on q0
  Mixed.cnot(0, 1);    // layer 2 on q0,q1
  Mixed.cnot(1, 2);    // layer 3 on q1,q2
  Mixed.h(0);          // layer 3 on q0
  EXPECT_EQ(Mixed.depth(), 3u);
  EXPECT_EQ(Circuit(4).depth(), 0u);
}

TEST(QasmExportTest, HeaderAndGateSyntax) {
  Circuit C(3);
  C.h(0);
  C.sdg(2);
  C.rz(1, 0.5);
  C.cnot(0, 2);
  std::string Qasm = toQasm(C);
  EXPECT_NE(Qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(Qasm.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(Qasm.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(Qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(Qasm.find("sdg q[2];"), std::string::npos);
  EXPECT_NE(Qasm.find("rz(0.5) q[1];"), std::string::npos);
  EXPECT_NE(Qasm.find("cx q[0],q[2];"), std::string::npos);
}

TEST(QasmExportTest, AnglePrecisionSurvives) {
  Circuit C(1);
  C.rz(0, 1.0 / 3.0);
  std::string Qasm = toQasm(C);
  EXPECT_NE(Qasm.find("0.33333333333333331"), std::string::npos);
}

TEST(QasmExportTest, InstructionCountMatchesCircuit) {
  RNG Rng(45);
  Circuit C(4);
  for (int I = 0; I < 25; ++I) {
    unsigned Q = static_cast<unsigned>(Rng.uniformInt(4));
    if (Rng.bernoulli(0.3)) {
      unsigned R = (Q + 1 + static_cast<unsigned>(Rng.uniformInt(3))) % 4;
      C.cnot(Q, R);
    } else {
      C.h(Q);
    }
  }
  std::string Qasm = toQasm(C);
  size_t Lines = std::count(Qasm.begin(), Qasm.end(), '\n');
  EXPECT_EQ(Lines, C.size() + 3); // header, include, qreg
}

namespace {

/// Dense unitary of exp(i Theta/2 P) computed from first principles.
Matrix exactPauliRotation(const PauliString &P, unsigned N, double Theta) {
  return expm(P.toMatrix(N) * Complex(0.0, Theta / 2.0));
}

} // namespace

struct SynthesisCase {
  const char *Text;
  double Theta;
};

class PauliSynthesisTest : public ::testing::TestWithParam<SynthesisCase> {};

TEST_P(PauliSynthesisTest, CircuitMatchesExponential) {
  const SynthesisCase &Case = GetParam();
  PauliString P = *PauliString::parse(Case.Text);
  unsigned N = static_cast<unsigned>(std::string(Case.Text).size());
  Circuit C(N);
  appendPauliRotation(C, P, Case.Theta);
  Matrix U = circuitUnitary(C);
  Matrix Expected = exactPauliRotation(P, N, Case.Theta);
  EXPECT_NEAR(U.maxAbsDiff(Expected), 0.0, 1e-10)
      << "string " << Case.Text << " theta " << Case.Theta;
}

INSTANTIATE_TEST_SUITE_P(
    Strings, PauliSynthesisTest,
    ::testing::Values(SynthesisCase{"Z", 0.7}, SynthesisCase{"X", 0.7},
                      SynthesisCase{"Y", 0.7}, SynthesisCase{"ZZ", 1.3},
                      SynthesisCase{"XY", -0.4}, SynthesisCase{"YX", 2.1},
                      SynthesisCase{"XYZ", 0.9}, SynthesisCase{"ZIZ", 0.5},
                      SynthesisCase{"IXI", -1.7}, SynthesisCase{"YYYY", 0.3},
                      SynthesisCase{"XZIY", 1.1},
                      SynthesisCase{"ZXZY", -0.6}));

TEST(PauliSynthesisTest, IdentityStringAppendsNothing) {
  Circuit C(3);
  appendPauliRotation(C, PauliString(), 1.0);
  EXPECT_TRUE(C.empty());
}

TEST(PauliSynthesisTest, CustomRootPreservesUnitary) {
  PauliString P = *PauliString::parse("XYZ");
  for (int Root = 0; Root < 3; ++Root) {
    PauliSynthesisOptions Opts;
    Opts.Root = Root;
    Circuit C(3);
    appendPauliRotation(C, P, 0.8, Opts);
    Matrix U = circuitUnitary(C);
    EXPECT_NEAR(U.maxAbsDiff(exactPauliRotation(P, 3, 0.8)), 0.0, 1e-10)
        << "root " << Root;
  }
}

TEST(PauliSynthesisTest, CNOTCountFormula) {
  PauliString P = *PauliString::parse("XYZY");
  Circuit C(4);
  appendPauliRotation(C, P, 0.4);
  EXPECT_EQ(C.counts().CNOTs, pauliRotationCNOTs(P));
  EXPECT_EQ(pauliRotationCNOTs(P), 6u);
  EXPECT_EQ(pauliRotationCNOTs(*PauliString::parse("Z")), 0u);
  EXPECT_EQ(pauliRotationCNOTs(PauliString()), 0u);
}

TEST(OptimizerTest, AdjacentInversePairsCancel) {
  Circuit C(2);
  C.h(0);
  C.h(0);
  C.cnot(0, 1);
  C.cnot(0, 1);
  C.s(1);
  C.sdg(1);
  Circuit Opt = optimizeCircuit(C);
  EXPECT_TRUE(Opt.empty());
}

TEST(OptimizerTest, RotationMerging) {
  Circuit C(1);
  C.rz(0, 0.5);
  C.rz(0, 0.25);
  Circuit Opt = optimizeCircuit(C);
  ASSERT_EQ(Opt.size(), 1u);
  EXPECT_DOUBLE_EQ(Opt.gate(0).Angle, 0.75);
}

TEST(OptimizerTest, OppositeRotationsVanish) {
  Circuit C(1);
  C.rz(0, 0.5);
  C.rz(0, -0.5);
  EXPECT_TRUE(optimizeCircuit(C).empty());
}

TEST(OptimizerTest, CancellationThroughCommutingGates) {
  // CNOT(0,1), Rz on control, CNOT(0,1): the Rz commutes with the control,
  // so the CNOTs cancel.
  Circuit C(2);
  C.cnot(0, 1);
  C.rz(0, 0.3);
  C.cnot(0, 1);
  Circuit Opt = optimizeCircuit(C);
  ASSERT_EQ(Opt.size(), 1u);
  EXPECT_EQ(Opt.gate(0).Kind, GateKind::Rz);
}

TEST(OptimizerTest, BlockedCancellationIsKept) {
  // H on the target blocks CNOT cancellation.
  Circuit C(2);
  C.cnot(0, 1);
  C.h(1);
  C.cnot(0, 1);
  Circuit Opt = optimizeCircuit(C);
  EXPECT_EQ(Opt.counts().CNOTs, 2u);
}

TEST(OptimizerTest, DisjointQubitsDontBlock) {
  Circuit C(3);
  C.h(0);
  C.x(2);
  C.y(1);
  C.h(0);
  Circuit Opt = optimizeCircuit(C);
  EXPECT_EQ(Opt.size(), 2u);
}

TEST(OptimizerTest, LadderCNOTsCommute) {
  // Two CNOTs sharing a target commute; the outer pair cancels.
  Circuit C(3);
  C.cnot(0, 2);
  C.cnot(1, 2);
  C.cnot(0, 2);
  Circuit Opt = optimizeCircuit(C);
  ASSERT_EQ(Opt.counts().CNOTs, 1u);
  EXPECT_EQ(Opt.gate(0).Qubit0, 1u);
}

TEST(OptimizerTest, GatesCommuteTable) {
  Gate Rz0(GateKind::Rz, 0, 0.5);
  Gate Cx01 = Gate::cnot(0, 1);
  Gate Cx10 = Gate::cnot(1, 0);
  Gate X1(GateKind::X, 1);
  Gate H1(GateKind::H, 1);
  EXPECT_TRUE(gatesCommute(Rz0, Cx01));  // diagonal on control
  EXPECT_FALSE(gatesCommute(Rz0, Cx10)); // diagonal on target
  EXPECT_TRUE(gatesCommute(X1, Cx01));   // X on target
  EXPECT_FALSE(gatesCommute(H1, Cx01));  // H on target
  EXPECT_FALSE(gatesCommute(Cx01, Cx10));
  EXPECT_TRUE(gatesCommute(Gate::cnot(0, 2), Gate::cnot(1, 2)));
  EXPECT_TRUE(gatesCommute(Gate::cnot(0, 1), Gate::cnot(0, 2)));
}

TEST(OptimizerTest, PreservesUnitaryOnRandomCircuits) {
  RNG Rng(41);
  for (int Trial = 0; Trial < 25; ++Trial) {
    const unsigned N = 3;
    Circuit C(N);
    for (int G = 0; G < 30; ++G) {
      switch (Rng.uniformInt(6)) {
      case 0:
        C.h(static_cast<unsigned>(Rng.uniformInt(N)));
        break;
      case 1:
        C.s(static_cast<unsigned>(Rng.uniformInt(N)));
        break;
      case 2:
        C.sdg(static_cast<unsigned>(Rng.uniformInt(N)));
        break;
      case 3:
        C.rz(static_cast<unsigned>(Rng.uniformInt(N)),
             Rng.uniform(-1.0, 1.0));
        break;
      case 4:
        C.x(static_cast<unsigned>(Rng.uniformInt(N)));
        break;
      default: {
        unsigned A = static_cast<unsigned>(Rng.uniformInt(N));
        unsigned B = static_cast<unsigned>(Rng.uniformInt(N));
        if (A != B)
          C.cnot(A, B);
        break;
      }
      }
    }
    Circuit Opt = optimizeCircuit(C);
    EXPECT_LE(Opt.size(), C.size());
    Matrix U1 = circuitUnitary(C);
    Matrix U2 = circuitUnitary(Opt);
    ASSERT_NEAR(U1.maxAbsDiff(U2), 0.0, 1e-9);
  }
}

TEST(OptimizerTest, IdempotentOnFixpoint) {
  RNG Rng(46);
  for (int Trial = 0; Trial < 10; ++Trial) {
    Circuit C(3);
    for (int G = 0; G < 40; ++G) {
      if (Rng.bernoulli(0.4)) {
        unsigned A = static_cast<unsigned>(Rng.uniformInt(3));
        unsigned B = (A + 1 + static_cast<unsigned>(Rng.uniformInt(2))) % 3;
        C.cnot(A, B);
      } else {
        C.h(static_cast<unsigned>(Rng.uniformInt(3)));
      }
    }
    Circuit Once = optimizeCircuit(C);
    Circuit Twice = optimizeCircuit(Once);
    EXPECT_EQ(Once.size(), Twice.size());
  }
}

TEST(OptimizerTest, SnippetRoundTripIsFullyRemoved) {
  // A snippet followed by its exact inverse parts in reverse: everything
  // cancels, including through the commuting ladder.
  PauliString P = *PauliString::parse("ZXZY");
  Circuit C(4);
  appendPauliRotation(C, P, 0.9);
  appendPauliRotation(C, P, -0.9);
  EXPECT_TRUE(optimizeCircuit(C).empty());
}

TEST(OptimizerTest, BackToBackSnippetsCancel) {
  // exp(i t P) directly followed by exp(-i t P): everything should vanish
  // after rotation merging and inverse-pair elimination.
  PauliString P = *PauliString::parse("XZY");
  Circuit C(3);
  appendPauliRotation(C, P, 0.6);
  appendPauliRotation(C, P, -0.6);
  Circuit Opt = optimizeCircuit(C);
  EXPECT_TRUE(Opt.empty());
}

TEST(OptimizerTest, MatchedNeighborSnippetsCancelLadders) {
  // ZZZZ then XZXZ (the paper's Fig. 6 pair): with the shared root placed
  // on a matched qubit (q2, both Z), a ladder CNOT pair cancels across the
  // snippet boundary.
  PauliSynthesisOptions Root2;
  Root2.Root = 2;
  Circuit C(4);
  appendPauliRotation(C, *PauliString::parse("ZZZZ"), 0.4, Root2);
  appendPauliRotation(C, *PauliString::parse("XZXZ"), 0.4, Root2);
  Circuit Opt = optimizeCircuit(C);
  EXPECT_LT(Opt.counts().CNOTs, C.counts().CNOTs);
  // Unitary preserved.
  EXPECT_NEAR(circuitUnitary(C).maxAbsDiff(circuitUnitary(Opt)), 0.0, 1e-9);
}

TEST(OptimizerTest, UnmatchedRootBlocksLadderCancellation) {
  // With the default root on q3 (Z vs X, unmatched) the basis change on
  // the root blocks every cross-boundary CNOT cancellation.
  Circuit C(4);
  appendPauliRotation(C, *PauliString::parse("ZZZZ"), 0.4);
  appendPauliRotation(C, *PauliString::parse("XZXZ"), 0.4);
  Circuit Opt = optimizeCircuit(C);
  EXPECT_EQ(Opt.counts().CNOTs, C.counts().CNOTs);
}
