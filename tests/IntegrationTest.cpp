//===- tests/IntegrationTest.cpp - end-to-end pipeline tests -------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Cross-module scenarios mirroring the paper's experimental pipeline on
// CI-sized workloads: configurations (Baseline / MarQSim-GC / MarQSim-GC-RP)
// built end to end, gate-count improvements, accuracy preservation, and
// consistency between the emitter's cancellation and the independent
// peephole pass.
//
//===----------------------------------------------------------------------===//

#include "circuit/Optimizer.h"
#include "circuit/QasmExport.h"
#include "core/Baselines.h"
#include "core/CNOTCountOracle.h"
#include "core/Compiler.h"
#include "core/TransitionBuilders.h"
#include "hamgen/Molecular.h"
#include "hamgen/Registry.h"
#include "sim/Fidelity.h"
#include "stats/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace marqsim;

namespace {

/// A small molecular-like instance used across the integration tests.
Hamiltonian testMolecule() { return makeMolecularLike(6, 40, 123); }

} // namespace

TEST(IntegrationTest, ConfigurationsAreValidHTTGraphs) {
  Hamiltonian H = testMolecule().splitLargeTerms();
  for (auto [WQd, WGc, WRp] :
       {std::tuple{1.0, 0.0, 0.0}, std::tuple{0.4, 0.6, 0.0},
        std::tuple{0.4, 0.3, 0.3}}) {
    TransitionMatrix P = makeConfigMatrix(H, WQd, WGc, WRp, /*Rounds=*/4);
    HTTGraph G(H, P);
    EXPECT_TRUE(G.isValidForCompilation())
        << WQd << "/" << WGc << "/" << WRp;
  }
}

TEST(IntegrationTest, GateCancellationConfigReducesCNOTs) {
  // The headline claim (Fig. 13) at CI scale: MarQSim-GC emits fewer CNOTs
  // than the qDrift baseline at identical sampling budget N.
  Hamiltonian H = testMolecule().splitLargeTerms();
  double T = M_PI / 4.0, Eps = 0.05;
  TransitionMatrix Pqd = buildQDrift(H);
  TransitionMatrix Pgc = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph GBase(H, Pqd), GGc(H, Pgc);

  RunningStats Base, Gc;
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    RNG R1(1000 + Seed), R2(1000 + Seed);
    Base.add(static_cast<double>(
        compileBySampling(GBase, T, Eps, R1).Counts.CNOTs));
    Gc.add(static_cast<double>(
        compileBySampling(GGc, T, Eps, R2).Counts.CNOTs));
  }
  EXPECT_LT(Gc.mean(), Base.mean());
  double Reduction = 1.0 - Gc.mean() / Base.mean();
  // The paper reports ~10-35% across benchmarks; at CI scale accept > 3%.
  EXPECT_GT(Reduction, 0.03);
}

TEST(IntegrationTest, AccuracyPreservedAcrossConfigurations) {
  // Theorem 4.1: all configurations share the error bound; measured
  // fidelities must be comparable.
  Hamiltonian H = makeMolecularLike(5, 24, 77).splitLargeTerms();
  double T = 0.4, Eps = 0.02;
  FidelityEvaluator Eval(H, T, 32);

  TransitionMatrix Pqd = buildQDrift(H);
  TransitionMatrix Pmix = makeConfigMatrix(H, 0.4, 0.3, 0.3, 4);
  HTTGraph GBase(H, Pqd), GMix(H, Pmix);
  RunningStats FBase, FMix;
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    RNG R1(2000 + Seed), R2(2000 + Seed);
    FBase.add(Eval.fidelity(compileBySampling(GBase, T, Eps, R1).Schedule));
    FMix.add(Eval.fidelity(compileBySampling(GMix, T, Eps, R2).Schedule));
  }
  EXPECT_GT(FBase.mean(), 0.95);
  EXPECT_GT(FMix.mean(), 0.95);
  EXPECT_NEAR(FBase.mean(), FMix.mean(), 0.03);
}

TEST(IntegrationTest, PeepholeGainOverEmitterIsBounded) {
  // The emitter implements the paper's *pairwise* cancellation model; the
  // peephole pass can additionally commute gates across several snippet
  // boundaries (e.g. chains of diagonal Z-strings), so it finds extra
  // savings — but the bulk of the cancellation must already be realized by
  // the emitter, and the peephole must never increase counts.
  Hamiltonian H = testMolecule().splitLargeTerms();
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  RNG Rng(3000);
  CompilationResult R = compileBySampling(G, 0.5, 0.1, Rng);
  Circuit Optimized = optimizeCircuit(R.Circ);
  EXPECT_LE(Optimized.counts().total(), R.Counts.total());
  double Slack =
      1.0 - double(Optimized.counts().total()) / double(R.Counts.total());
  EXPECT_GE(Slack, 0.0);
  EXPECT_LT(Slack, 0.35);
}

TEST(IntegrationTest, EmitterCancellationAgreesWithPeepholeOnNaive) {
  // Emitting without cross-cancellation and then running the peephole pass
  // should land near the emitter's own cancellation-aware counts.
  Hamiltonian H = makeMolecularLike(5, 20, 55).splitLargeTerms();
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  RNG R1(4000), R2(4000);
  CompilationOptions Naive;
  Naive.Emit.CrossCancellation = false;
  CompilationResult Plain = compileBySampling(G, 0.4, 0.1, R1, Naive);
  CompilationResult Fancy = compileBySampling(G, 0.4, 0.1, R2);
  Circuit PlainOpt = optimizeCircuit(Plain.Circ);
  // Same sampled sequence (same seed), so counts are directly comparable.
  ASSERT_EQ(Plain.Sequence, Fancy.Sequence);
  double Ratio =
      double(PlainOpt.counts().CNOTs) / double(Fancy.Counts.CNOTs);
  EXPECT_GT(Ratio, 0.9);
  EXPECT_LT(Ratio, 1.15);
}

TEST(IntegrationTest, RegistryBenchmarkCompilesEndToEnd) {
  auto Spec = *findBenchmark("Na+");
  Hamiltonian H = makeBenchmark(Spec).splitLargeTerms();
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  RNG Rng(5000);
  CompilationResult R = compileBySampling(G, Spec.Time, 0.2, Rng);
  EXPECT_GT(R.Counts.CNOTs, 0u);
  EXPECT_EQ(R.Circ.numQubits(), Spec.Qubits);
}

TEST(IntegrationTest, MarQSimBeatsDeterministicTrotterOnAccuracyBudget) {
  // Sanity version of the paper's motivation: at a matched gate budget the
  // randomized compilers achieve competitive accuracy.
  Hamiltonian H = makeMolecularLike(5, 24, 99).splitLargeTerms();
  double T = 0.5;
  FidelityEvaluator Eval(H, T, 16);
  RNG Rng(6000);
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  CompilationResult MarQ = compileBySampling(G, T, 0.02, Rng);
  // Match Trotter's gate budget to MarQSim's.
  unsigned Reps = std::max<unsigned>(
      1, static_cast<unsigned>(MarQ.NumSamples / H.numTerms()));
  CompilationResult Trot =
      compileTrotter1(H, T, Reps, TermOrderKind::Lexicographic);
  double FM = Eval.fidelity(MarQ.Schedule);
  double FT = Eval.fidelity(Trot.Schedule);
  EXPECT_GT(FM, 0.9);
  EXPECT_GT(FT, 0.5); // Trotter remains correct, possibly less accurate
}

TEST(IntegrationTest, DominantTermHamiltonianSurvivesPipeline) {
  // Failure injection: one term holds 97% of the weight. Theorem 5.1's
  // flow is infeasible without splitting; splitLargeTerms must repair it
  // and the full pipeline must stay correct.
  Hamiltonian Raw = Hamiltonian::parse(
      {{9.7, "XX"}, {0.2, "ZZ"}, {0.1, "YI"}});
  Hamiltonian H = Raw.splitLargeTerms();
  EXPECT_GT(H.numTerms(), Raw.numTerms());
  for (double Pi : H.stationaryDistribution())
    EXPECT_LE(Pi, 0.5 + 1e-12);

  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  ASSERT_TRUE(G.isValidForCompilation());
  RNG Rng(7777);
  CompilationResult R = compileBySampling(G, 0.1, 0.01, Rng);
  FidelityEvaluator Eval(H, 0.1, 4);
  EXPECT_GT(Eval.fidelity(R.Schedule), 0.97);
}

TEST(IntegrationTest, TwoTermHamiltonianCompiles) {
  // Minimum size for the MCFP (the flow needs somewhere else to go).
  // pi = (0.6, 0.4) exceeds the Theorem 5.1 cap, so the standard pipeline
  // splits first: {0.3 XZ, 0.3 XZ, 0.4 ZX}.
  Hamiltonian H =
      Hamiltonian::parse({{0.6, "XZ"}, {0.4, "ZX"}}).splitLargeTerms();
  EXPECT_EQ(H.numTerms(), 3u);
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  EXPECT_TRUE(G.isValidForCompilation());
  RNG Rng(8888);
  CompilationResult R = compileBySampling(G, 0.3, 0.05, Rng);
  FidelityEvaluator Eval(H, 0.3, 4);
  EXPECT_GT(Eval.fidelity(R.Schedule), 0.97);
}

TEST(IntegrationTest, SingleTermHamiltonianViaQDrift) {
  // One term: compilation is exact (a single rotation repeated). The MCFP
  // path requires >= 2 terms, but the qDrift route must work.
  Hamiltonian H = Hamiltonian::parse({{0.8, "ZZ"}});
  RNG Rng(9999);
  CompilationResult R = compileQDrift(H, 0.7, 0.05, Rng);
  FidelityEvaluator Eval(H, 0.7, 4);
  EXPECT_NEAR(Eval.fidelity(R.Schedule), 1.0, 1e-9);
}

TEST(IntegrationTest, NegativeWeightHamiltonianPipeline) {
  // Mixed-sign coefficients: pi uses |h| but taus must carry signs.
  Hamiltonian H = Hamiltonian::parse(
      {{-0.5, "XY"}, {0.3, "ZZ"}, {-0.2, "YX"}, {0.4, "XI"}});
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.3, 0.3, 4);
  HTTGraph G(H, P);
  ASSERT_TRUE(G.isValidForCompilation());
  RNG Rng(10101);
  CompilationResult R = compileBySampling(G, 0.4, 0.01, Rng);
  FidelityEvaluator Eval(H, 0.4, 4);
  EXPECT_GT(Eval.fidelity(R.Schedule), 0.98);
}

TEST(IntegrationTest, QasmOfCompiledCircuitIsWellFormed) {
  Hamiltonian H = makeMolecularLike(5, 20, 66).splitLargeTerms();
  TransitionMatrix P = makeConfigMatrix(H, 0.4, 0.6, 0.0);
  HTTGraph G(H, P);
  RNG Rng(11111);
  CompilationResult R = compileBySampling(G, 0.3, 0.1, Rng);
  std::string Qasm = toQasm(R.Circ);
  EXPECT_NE(Qasm.find("OPENQASM 2.0;"), std::string::npos);
  // Every gate emits exactly one line after the 3 header lines.
  size_t Lines = std::count(Qasm.begin(), Qasm.end(), '\n');
  EXPECT_EQ(Lines, R.Circ.size() + 3);
}

TEST(IntegrationTest, VaryingRatioMonotonicity) {
  // Fig. 14 at CI scale: increasing the Pgc share cannot increase the
  // expected transition CNOT cost.
  Hamiltonian H = testMolecule().splitLargeTerms();
  std::vector<double> Pi = H.stationaryDistribution();
  TransitionMatrix Pgc = buildGateCancellation(H);
  double Prev = 1e100;
  for (double Share : {0.2, 0.6, 0.8}) {
    TransitionMatrix P = combineWithQDrift(H, Pgc, 1.0 - Share);
    double Cost = expectedTransitionCNOTs(H, P, Pi);
    EXPECT_LE(Cost, Prev + 1e-9);
    Prev = Cost;
  }
}
