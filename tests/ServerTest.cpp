//===- tests/ServerTest.cpp - Resident daemon contracts -----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contracts of the server subsystem:
//   * the JSON codec round-trips the protocol's value shapes, renders
//     deterministically, and rejects malformed/adversarial input,
//   * TaskSpec's JSON transport preserves contentKey and Hamiltonian
//     fingerprint exactly (the bit-identity precondition),
//   * frames decode strictly: bad JSON, missing/foreign version, and
//     missing type each fail with the right error code,
//   * the scheduler admits/bounds/cancels/expires/drains correctly, is
//     fair across client keys, and its streamed chunks concatenate
//     bit-identically to one full run,
//   * a live daemon serves results byte-identical to local runs, keeps a
//     connection alive across malformed frames, survives oversized
//     payloads and mid-stream disconnects, coalesces repeated specs onto
//     one MCFP solve, and drains cleanly on the shutdown frame.
//
//===----------------------------------------------------------------------===//

#include "circuit/QasmExport.h"
#include "server/Client.h"
#include "server/Daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

using namespace marqsim;
using server::Frame;

namespace {

Hamiltonian testHamiltonian() {
  return Hamiltonian::parse({{0.9, "XXII"},
                             {-0.5, "IZZI"},
                             {0.25, "IIXY"},
                             {0.75, "ZIIZ"}});
}

TaskSpec testSpec(size_t Shots = 3) {
  TaskSpec Spec;
  Spec.Source = HamiltonianSource::fromHamiltonian(testHamiltonian());
  Spec.Mix = *ChannelMix::preset("gc");
  Spec.Time = 0.4;
  Spec.Epsilon = 0.06;
  Spec.Shots = Shots;
  Spec.Seed = 2024;
  Spec.Evaluate.FidelityColumns = 2;
  return Spec;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON codec
//===----------------------------------------------------------------------===//

TEST(JsonTest, DumpIsDeterministicAndInsertionOrdered) {
  json::Value V = json::Value::object()
                      .set("b", 2)
                      .set("a", 1)
                      .set("s", "x\"y\n")
                      .set("t", true)
                      .set("n", nullptr);
  json::Value Arr = json::Value::array();
  Arr.push(1);
  Arr.push(2.5);
  V.set("arr", std::move(Arr));
  // Insertion order, not sorted; strings escaped; no whitespace.
  EXPECT_EQ(V.dump(), "{\"b\":2,\"a\":1,\"s\":\"x\\\"y\\n\",\"t\":true,"
                      "\"n\":null,\"arr\":[1,2.5]}");
  // set() replaces in place without reordering.
  V.set("a", 7);
  EXPECT_NE(V.dump().find("\"b\":2,\"a\":7"), std::string::npos);
}

TEST(JsonTest, ParseRoundTripsValueShapes) {
  const std::string Text =
      "{\"i\":-42,\"d\":2.5,\"b\":false,\"n\":null,\"s\":\"a\\u0041\\n\","
      "\"arr\":[1,[2],{\"k\":3}]}";
  std::optional<json::Value> V = json::Value::parse(Text);
  ASSERT_TRUE(V);
  EXPECT_EQ(V->find("i")->kind(), json::Value::Kind::Int);
  EXPECT_EQ(V->find("i")->asInt(), -42);
  EXPECT_EQ(V->find("d")->kind(), json::Value::Kind::Double);
  EXPECT_EQ(V->find("d")->asDouble(), 2.5);
  EXPECT_EQ(V->find("s")->asString(), "aA\n");
  EXPECT_EQ(V->find("arr")->size(), 3u);
  EXPECT_EQ(V->find("arr")->at(2).find("k")->asInt(), 3);
  // Re-dump re-parses to the same rendering (fixed point).
  std::optional<json::Value> Again = json::Value::parse(V->dump());
  ASSERT_TRUE(Again);
  EXPECT_EQ(Again->dump(), V->dump());
}

TEST(JsonTest, RejectsMalformedAndAdversarialInput) {
  std::string Error;
  EXPECT_FALSE(json::Value::parse("", &Error));
  EXPECT_FALSE(json::Value::parse("{\"a\":1} trailing", &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos);
  EXPECT_FALSE(json::Value::parse("{\"a\":}", &Error));
  EXPECT_FALSE(json::Value::parse("[1,]", &Error));
  EXPECT_FALSE(json::Value::parse("\"unterminated", &Error));
  EXPECT_FALSE(json::Value::parse("nul", &Error));
  EXPECT_FALSE(json::Value::parse("{\"a\" 1}", &Error));
  // A nesting bomb fails on the depth limit instead of the stack.
  std::string Bomb(4096, '[');
  EXPECT_FALSE(json::Value::parse(Bomb, &Error));
  EXPECT_NE(Error.find("deep"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TaskSpec JSON transport
//===----------------------------------------------------------------------===//

TEST(TaskSpecJsonTest, RoundTripPreservesContentKeyAndFingerprint) {
  TaskSpec Spec = testSpec(7);
  // Non-default values across the board so a dropped field shows up.
  Spec.Mix = ChannelMix{0.5, 0.3, 0.2};
  Spec.PerturbRounds = 5;
  Spec.PerturbSeed = 0xFEED;
  Spec.Flow.ProbScale = 500'000'000;
  Spec.Flow.CostScale = 3;
  Spec.Time = 0.7311;
  Spec.Epsilon = 0.031;
  Spec.UseCDF = !Spec.UseCDF;
  Spec.Seed = 0x1234'5678'9ABC'DEF0ull;
  Spec.Jobs = 2;
  Spec.EvalJobs = 2;
  Spec.Evaluate.FidelityColumns = 3;
  Spec.Evaluate.ColumnSeed = 99;

  std::string Error;
  std::optional<json::Value> J = Spec.toJson(&Error);
  ASSERT_TRUE(J) << Error;
  // Through text, as the wire would carry it.
  std::optional<json::Value> Parsed = json::Value::parse(J->dump(), &Error);
  ASSERT_TRUE(Parsed) << Error;
  std::optional<TaskSpec> Back = TaskSpec::fromJson(*Parsed, &Error);
  ASSERT_TRUE(Back) << Error;

  EXPECT_EQ(Back->contentKey(), Spec.contentKey());
  EXPECT_EQ(Back->Shots, Spec.Shots);
  EXPECT_EQ(Back->Seed, Spec.Seed);
  EXPECT_EQ(Back->Jobs, Spec.Jobs);
  EXPECT_EQ(Back->EvalJobs, Spec.EvalJobs);
  // The doubles travel as bit patterns: exact equality, not closeness.
  EXPECT_EQ(Back->Time, Spec.Time);
  EXPECT_EQ(Back->Epsilon, Spec.Epsilon);
  EXPECT_EQ(Back->Mix.WQd, Spec.Mix.WQd);

  std::optional<Hamiltonian> A =
      SimulationService::resolveHamiltonian(Spec.Source, nullptr);
  std::optional<Hamiltonian> B =
      SimulationService::resolveHamiltonian(Back->Source, nullptr);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->fingerprint(), B->fingerprint());
}

TEST(TaskSpecJsonTest, NoiseRoundTripsAndOldFramesParseAsNoiseless) {
  TaskSpec Spec = testSpec();
  Spec.Evaluate.FidelityColumns = 2;
  Spec.Noise.Kind = NoiseChannelKind::AmplitudeDamping;
  Spec.Noise.Prob = 0.1 + 0.025; // no short decimal representation
  Spec.Noise.TwoQubitFactor = 1.0 / 3.0;
  Spec.Noise.Mode = NoiseMode::Density;

  std::string Error;
  std::optional<json::Value> J = Spec.toJson(&Error);
  ASSERT_TRUE(J) << Error;
  std::optional<json::Value> Parsed = json::Value::parse(J->dump(), &Error);
  ASSERT_TRUE(Parsed) << Error;
  std::optional<TaskSpec> Back = TaskSpec::fromJson(*Parsed, &Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->Noise.Kind, NoiseChannelKind::AmplitudeDamping);
  EXPECT_EQ(Back->Noise.Mode, NoiseMode::Density);
  // Hex transport: bit-for-bit doubles, hence equal content keys.
  EXPECT_EQ(Back->Noise.Prob, Spec.Noise.Prob);
  EXPECT_EQ(Back->Noise.TwoQubitFactor, Spec.Noise.TwoQubitFactor);
  EXPECT_EQ(Back->contentKey(), Spec.contentKey());

  // Frames serialized before the noise field existed carry no "noise"
  // member; they must parse as noiseless, not fail strict validation.
  std::optional<json::Value> Plain = testSpec().toJson();
  ASSERT_TRUE(Plain);
  json::Value Old = json::Value::object();
  for (const json::Member &M : *Plain->members())
    if (M.first != "noise")
      Old.set(M.first, M.second);
  std::optional<TaskSpec> FromOld = TaskSpec::fromJson(Old, &Error);
  ASSERT_TRUE(FromOld) << Error;
  EXPECT_FALSE(FromOld->Noise.enabled());
  EXPECT_EQ(FromOld->contentKey(), testSpec().contentKey());

  // When the member is present, unknown spellings are rejected.
  json::Value Bad = *J;
  json::Value BadNoise = json::Value::object()
                             .set("channel", "bitflip")
                             .set("mode", "density")
                             .set("prob", "3fb0000000000000")
                             .set("two_qubit_factor", "3ff0000000000000");
  Bad.set("noise", std::move(BadNoise));
  EXPECT_FALSE(TaskSpec::fromJson(Bad, &Error));
  EXPECT_NE(Error.find("channel"), std::string::npos);
}

TEST(TaskSpecJsonTest, RejectsMalformedSpecs) {
  TaskSpec Spec = testSpec();
  std::optional<json::Value> Good = Spec.toJson();
  ASSERT_TRUE(Good);
  std::string Error;

  json::Value BadFormat = *Good;
  BadFormat.set("format", "marqsim-spec-v999");
  EXPECT_FALSE(TaskSpec::fromJson(BadFormat, &Error));
  EXPECT_NE(Error.find("format"), std::string::npos);

  json::Value NoHam = *Good;
  NoHam.set("hamiltonian", json::Value::object());
  EXPECT_FALSE(TaskSpec::fromJson(NoHam, &Error));

  // A Pauli string whose length disagrees with the declared register.
  json::Value BadTerm = *Good;
  {
    json::Value Ham = json::Value::object();
    Ham.set("qubits", 4);
    json::Value Terms = json::Value::array();
    json::Value Term = json::Value::array();
    Term.push("3fe0000000000000");
    Term.push("XX"); // two qubits, register says four
    Terms.push(std::move(Term));
    Ham.set("terms", std::move(Terms));
    BadTerm.set("hamiltonian", std::move(Ham));
  }
  EXPECT_FALSE(TaskSpec::fromJson(BadTerm, &Error));

  EXPECT_FALSE(TaskSpec::fromJson(json::Value::object(), &Error));
  EXPECT_FALSE(TaskSpec::fromJson(json::Value(1), &Error));
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, FramesRoundTripWithLeadingVersionAndType) {
  std::string Line = server::encodeFrame(
      "submit", json::Value::object().set("id", 7));
  ASSERT_FALSE(Line.empty());
  EXPECT_EQ(Line.back(), '\n');
  EXPECT_EQ(Line.rfind("{\"v\":1,\"type\":\"submit\"", 0), 0u);
  std::optional<Frame> F = server::decodeFrame(Line);
  ASSERT_TRUE(F);
  EXPECT_EQ(F->Type, "submit");
  EXPECT_EQ(F->Body.find("id")->asInt(), 7);
}

TEST(ProtocolTest, DecodeRejectsWithPreciseErrorCodes) {
  std::string Code, Message;
  EXPECT_FALSE(server::decodeFrame("not json", &Code, &Message));
  EXPECT_EQ(Code, "bad-frame");
  EXPECT_FALSE(server::decodeFrame("[1,2]", &Code, &Message));
  EXPECT_EQ(Code, "bad-frame");
  EXPECT_FALSE(server::decodeFrame("{\"type\":\"health\"}", &Code, &Message));
  EXPECT_EQ(Code, "bad-frame"); // missing version
  EXPECT_FALSE(server::decodeFrame("{\"v\":99,\"type\":\"health\"}", &Code,
                                   &Message));
  EXPECT_EQ(Code, "version-mismatch");
  EXPECT_FALSE(server::decodeFrame("{\"v\":1}", &Code, &Message));
  EXPECT_EQ(Code, "bad-frame"); // missing type
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, RunsARequestToDone) {
  SimulationService Service;
  server::BatchScheduler Sched(Service);
  std::string Error;
  server::SubmitReject Reject;
  uint64_t Id = Sched.submit(testSpec(), "c1", &Reject, &Error);
  ASSERT_GT(Id, 0u) << Error;
  std::optional<server::RequestOutcome> Out = Sched.wait(Id);
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->State, server::RequestState::Done);
  ASSERT_TRUE(Out->Result);
  EXPECT_EQ(Out->Result->Batch.Shots.size(), 3u);

  // Unknown ids answer nothing rather than blocking.
  EXPECT_FALSE(Sched.wait(Id + 999));
  EXPECT_FALSE(Sched.status(Id + 999));
  EXPECT_EQ(*Sched.status(Id), server::RequestState::Done);
  EXPECT_EQ(Sched.stats().Completed, 1u);
}

TEST(SchedulerTest, StreamedChunksConcatenateBitIdentically) {
  SimulationService Reference;
  TaskSpec Spec = testSpec(5);
  std::optional<TaskResult> Full = Reference.run(Spec);
  ASSERT_TRUE(Full);

  SimulationService Service;
  server::SchedulerOptions Opts;
  Opts.StreamChunkShots = 2; // 5 shots -> chunks of 2+2+1
  server::BatchScheduler Sched(Service, Opts);

  std::mutex M;
  std::vector<ShotRange> Ranges;
  std::vector<ShotSummary> Streamed;
  std::vector<double> Fidelities;
  uint64_t Id = Sched.submit(
      Spec, "c1", nullptr, nullptr,
      [&](const ShotRange &R, const std::vector<ShotSummary> &S,
          const std::vector<double> &F) {
        std::lock_guard<std::mutex> Lock(M);
        Ranges.push_back(R);
        Streamed.insert(Streamed.end(), S.begin(), S.end());
        Fidelities.insert(Fidelities.end(), F.begin(), F.end());
      });
  ASSERT_GT(Id, 0u);
  std::optional<server::RequestOutcome> Out = Sched.wait(Id);
  ASSERT_TRUE(Out);
  ASSERT_EQ(Out->State, server::RequestState::Done);

  // Chunks arrived in order and cover the batch exactly.
  ASSERT_EQ(Ranges.size(), 3u);
  size_t Next = 0;
  for (const ShotRange &R : Ranges) {
    EXPECT_EQ(R.Begin, Next);
    Next = R.end();
  }
  EXPECT_EQ(Next, 5u);

  // Both the streamed pieces and the folded result are bit-identical to
  // the single-run reference.
  ASSERT_EQ(Streamed.size(), 5u);
  ASSERT_EQ(Fidelities.size(), 5u);
  for (size_t I = 0; I < 5; ++I) {
    EXPECT_EQ(Streamed[I].SequenceHash, Full->Batch.Shots[I].SequenceHash);
    EXPECT_EQ(Fidelities[I], Full->ShotFidelities[I]);
  }
  EXPECT_EQ(Out->Result->Batch.batchHash(), Full->Batch.batchHash());
  EXPECT_EQ(Out->Result->Fidelity.Mean, Full->Fidelity.Mean);
  EXPECT_EQ(Out->Result->Fidelity.Std, Full->Fidelity.Std);
}

TEST(SchedulerTest, BoundsQueueDepthAndReportsRejects) {
  SimulationService Service;
  server::SchedulerOptions Opts;
  Opts.MaxQueueDepth = 1;
  server::BatchScheduler Sched(Service, Opts);
  Sched.holdDispatch(true);

  server::SubmitReject Reject;
  uint64_t A = Sched.submit(testSpec(), "c1", &Reject);
  ASSERT_GT(A, 0u);
  std::string Error;
  uint64_t B = Sched.submit(testSpec(), "c1", &Reject, &Error);
  EXPECT_EQ(B, 0u);
  EXPECT_EQ(Reject, server::SubmitReject::QueueFull);
  EXPECT_NE(Error.find("queue"), std::string::npos);

  // An invalid spec is rejected before touching the queue.
  TaskSpec Invalid = testSpec();
  Invalid.Shots = 0;
  EXPECT_EQ(Sched.submit(Invalid, "c1", &Reject), 0u);
  EXPECT_EQ(Reject, server::SubmitReject::Invalid);

  Sched.holdDispatch(false);
  std::optional<server::RequestOutcome> Out = Sched.wait(A);
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->State, server::RequestState::Done);
  server::SchedulerStats S = Sched.stats();
  EXPECT_EQ(S.Admitted, 1u);
  EXPECT_EQ(S.RejectedFull, 1u);
  EXPECT_EQ(S.RejectedInvalid, 1u);
  EXPECT_EQ(S.PeakQueueDepth, 1u);
  EXPECT_EQ(S.LatencyCount, 1u);
  EXPECT_GT(S.latencyQuantileMs(0.5), 0.0);
}

TEST(SchedulerTest, CancelsQueuedAndExpiresPastDeadline) {
  SimulationService Service;
  server::BatchScheduler Sched(Service);
  Sched.holdDispatch(true);

  uint64_t Doomed = Sched.submit(testSpec(), "c1");
  ASSERT_GT(Doomed, 0u);
  EXPECT_TRUE(Sched.cancel(Doomed));
  std::optional<server::RequestOutcome> Out = Sched.wait(Doomed);
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->State, server::RequestState::Cancelled);
  EXPECT_FALSE(Sched.cancel(Doomed)); // already terminal

  uint64_t Late = Sched.submit(testSpec(), "c1", nullptr, nullptr, nullptr,
                               /*DeadlineMs=*/1);
  ASSERT_GT(Late, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Sched.holdDispatch(false);
  Out = Sched.wait(Late);
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->State, server::RequestState::Expired);
  EXPECT_EQ(Sched.stats().Cancelled, 1u);
  EXPECT_EQ(Sched.stats().Expired, 1u);
}

TEST(SchedulerTest, FairShareInterleavesClients) {
  SimulationService Service;
  server::BatchScheduler Sched(Service); // Workers = 1: serial execution
  Sched.holdDispatch(true);

  std::mutex M;
  std::vector<std::string> Order;
  auto Tag = [&](const char *Name) {
    return [&, Name](const ShotRange &, const std::vector<ShotSummary> &,
                     const std::vector<double> &) {
      std::lock_guard<std::mutex> Lock(M);
      if (Order.empty() || Order.back() != Name)
        Order.push_back(Name);
    };
  };
  TaskSpec Spec = testSpec(1);
  // Client A queues two requests before client B's one arrives; round-
  // robin still alternates A, B, A rather than draining A first.
  uint64_t A1 = Sched.submit(Spec, "a", nullptr, nullptr, Tag("a1"));
  uint64_t A2 = Sched.submit(Spec, "a", nullptr, nullptr, Tag("a2"));
  uint64_t B1 = Sched.submit(Spec, "b", nullptr, nullptr, Tag("b1"));
  ASSERT_TRUE(A1 && A2 && B1);
  Sched.holdDispatch(false);
  Sched.wait(A1);
  Sched.wait(A2);
  Sched.wait(B1);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], "a1");
  EXPECT_EQ(Order[1], "b1");
  EXPECT_EQ(Order[2], "a2");
}

TEST(SchedulerTest, DrainRefusesNewWorkAndFinishesAdmitted) {
  SimulationService Service;
  server::BatchScheduler Sched(Service);
  uint64_t Id = Sched.submit(testSpec(), "c1");
  ASSERT_GT(Id, 0u);
  Sched.drain();
  EXPECT_TRUE(Sched.draining());
  // Admitted work finished during the drain.
  std::optional<server::RequestOutcome> Out = Sched.wait(Id);
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->State, server::RequestState::Done);

  server::SubmitReject Reject;
  EXPECT_EQ(Sched.submit(testSpec(), "c1", &Reject), 0u);
  EXPECT_EQ(Reject, server::SubmitReject::Draining);
  EXPECT_EQ(Sched.stats().RejectedDraining, 1u);
}

//===----------------------------------------------------------------------===//
// Daemon end-to-end
//===----------------------------------------------------------------------===//

namespace {

/// A live daemon on an ephemeral port with its serve() loop on a thread.
struct TestDaemon {
  SimulationService Service;
  server::Daemon D;
  std::thread Server;
  std::atomic<int> Exit{-1};

  explicit TestDaemon(server::DaemonOptions Opts = {}) : D(Service, Opts) {
    std::string Error;
    Started = D.start(&Error);
    EXPECT_TRUE(Started) << Error;
    if (Started)
      Server = std::thread([this] { Exit = D.serve(); });
  }
  ~TestDaemon() { stop(); }

  /// Requests shutdown and joins serve(); returns its exit code.
  int stop() {
    if (Server.joinable()) {
      D.notifyShutdown();
      Server.join();
    }
    return Exit;
  }

  std::string hostPort() const {
    return "127.0.0.1:" + std::to_string(D.port());
  }

  bool Started = false;
};

/// Raw-socket line exchange for the malformed-input tests (the typed
/// client would refuse to send these).
std::optional<Frame> rawRoundTrip(Socket &Sock, const std::string &Line) {
  if (!Sock.sendAll(Line))
    return std::nullopt;
  std::string Response;
  if (Sock.readLine(Response, server::MaxResponseFrameBytes) !=
      Socket::ReadStatus::Line)
    return std::nullopt;
  return server::decodeFrame(Response);
}

std::string errorCode(const std::optional<Frame> &F) {
  if (!F || F->Type != "error")
    return "";
  const json::Value *Code = F->Body.find("code");
  return Code && Code->isString() ? Code->asString() : "";
}

} // namespace

TEST(DaemonTest, RemoteRunIsBitIdenticalToLocal) {
  TaskSpec Spec = testSpec(4);

  // The local reference, exactly as marqsim-cli produces it.
  SimulationService Local;
  TaskSpec LocalSpec = Spec;
  LocalSpec.Evaluate.ExportShotZero = true;
  std::optional<TaskResult> Reference = Local.run(LocalSpec);
  ASSERT_TRUE(Reference);
  std::ostringstream ReferenceQasm;
  exportQasm(Reference->ShotZero.Circ, ReferenceQasm);

  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;
  std::optional<server::RemoteRunResult> Remote =
      Client->runTask(Spec, &Error);
  ASSERT_TRUE(Remote) << Error;

  EXPECT_EQ(Remote->Qasm, ReferenceQasm.str());
  EXPECT_EQ(Remote->Depth, Reference->ShotZero.Circ.depth());
  EXPECT_EQ(Remote->Result.Fingerprint, Reference->Fingerprint);
  EXPECT_EQ(Remote->Result.Batch.batchHash(), Reference->Batch.batchHash());
  ASSERT_EQ(Remote->Result.ShotFidelities.size(),
            Reference->ShotFidelities.size());
  for (size_t I = 0; I < Reference->ShotFidelities.size(); ++I)
    EXPECT_EQ(Remote->Result.ShotFidelities[I],
              Reference->ShotFidelities[I])
        << "fidelity bits of shot " << I;
  EXPECT_EQ(Remote->Result.Fidelity.Mean, Reference->Fidelity.Mean);
  // The stats object is the daemon's run accounting, ready for CI.
  const json::Value *Batch = Remote->Stats.find("batch");
  ASSERT_NE(Batch, nullptr);
  EXPECT_EQ(Batch->find("shots")->asInt(), 4);
}

TEST(DaemonTest, RepeatedSubmitsCoalesceOnOneSolve) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;

  TaskSpec Spec = testSpec(3);
  std::optional<server::RemoteRunResult> First = Client->runTask(Spec, &Error);
  ASSERT_TRUE(First) << Error;
  std::optional<server::RemoteRunResult> Second =
      Client->runTask(Spec, &Error);
  ASSERT_TRUE(Second) << Error;
  EXPECT_EQ(First->Result.Batch.batchHash(),
            Second->Result.Batch.batchHash());
  EXPECT_EQ(First->Qasm, Second->Qasm);

  // The cumulative stats frame proves the one-solve contract: two full
  // submits, one MCFP solve.
  std::optional<json::Value> Stats = Client->serverStats(&Error);
  ASSERT_TRUE(Stats) << Error;
  const json::Value *Cache = Stats->find("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->find("gc_solves")->asInt(), 1);
  const json::Value *ServerSection = Stats->find("server");
  ASSERT_NE(ServerSection, nullptr);
  EXPECT_EQ(ServerSection->find("completed")->asInt(), 2);
}

TEST(DaemonTest, StreamedShotsCoverTheBatchInOrder) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;

  std::vector<ShotRange> Ranges;
  TaskSpec Spec = testSpec(4);
  std::optional<server::RemoteRunResult> Out = Client->runTask(
      Spec, &Error, /*Stream=*/true, /*DeadlineMs=*/0,
      [&](const ShotRange &R, size_t Total) {
        EXPECT_EQ(Total, 4u);
        Ranges.push_back(R);
      });
  ASSERT_TRUE(Out) << Error;
  ASSERT_EQ(Ranges.size(), 4u); // default chunk = 1 shot
  size_t Next = 0;
  for (const ShotRange &R : Ranges) {
    EXPECT_EQ(R.Begin, Next);
    Next = R.end();
  }
  EXPECT_EQ(Next, 4u);
}

TEST(DaemonTest, ConnectionSurvivesMalformedFrames) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<Socket> Sock =
      Socket::connectTo("127.0.0.1", Daemon.D.port(), &Error);
  ASSERT_TRUE(Sock) << Error;

  // Garbage, bad version, unknown type, missing spec: each answers an
  // error frame, and the line framing stays intact throughout — the same
  // connection then completes a clean health round trip.
  EXPECT_EQ(errorCode(rawRoundTrip(*Sock, "exterminate\n")), "bad-frame");
  EXPECT_EQ(errorCode(rawRoundTrip(*Sock, "{\"v\":9,\"type\":\"health\"}\n")),
            "version-mismatch");
  EXPECT_EQ(errorCode(rawRoundTrip(*Sock, "{\"v\":1,\"type\":\"warp\"}\n")),
            "unknown-type");
  EXPECT_EQ(errorCode(rawRoundTrip(*Sock, "{\"v\":1,\"type\":\"submit\"}\n")),
            "bad-spec");
  EXPECT_EQ(errorCode(rawRoundTrip(
                *Sock, "{\"v\":1,\"type\":\"submit\",\"spec\":{\"format\":"
                       "\"marqsim-spec-v1\"}}\n")),
            "bad-spec");
  EXPECT_EQ(errorCode(rawRoundTrip(*Sock, "{\"v\":1,\"type\":\"result\"}\n")),
            "bad-frame"); // result without an id
  EXPECT_EQ(
      errorCode(rawRoundTrip(
          *Sock, "{\"v\":1,\"type\":\"result\",\"id\":123456}\n")),
      "not-found");

  std::optional<Frame> Health =
      rawRoundTrip(*Sock, server::encodeFrame("health"));
  ASSERT_TRUE(Health);
  EXPECT_EQ(Health->Type, "health");
  EXPECT_EQ(Health->Body.find("status")->asString(), "ok");
}

TEST(DaemonTest, OversizedPayloadIsRejectedWithoutCrashing) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<Socket> Sock =
      Socket::connectTo("127.0.0.1", Daemon.D.port(), &Error);
  ASSERT_TRUE(Sock) << Error;

  // One "line" well past MaxRequestFrameBytes, never newline-terminated.
  // The daemon must cut it off with an oversized error (or just close,
  // if our send races its teardown) — and keep serving other clients.
  std::string Giant(server::MaxRequestFrameBytes + (64u << 10), 'x');
  if (Sock->sendAll(Giant)) {
    std::string Line;
    if (Sock->readLine(Line, server::MaxResponseFrameBytes) ==
        Socket::ReadStatus::Line) {
      EXPECT_EQ(errorCode(server::decodeFrame(Line)), "oversized");
    }
  }
  Sock->close();

  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;
  EXPECT_TRUE(Client->health(&Error)) << Error;
}

TEST(DaemonTest, SurvivesMidStreamDisconnects) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;

  // Half a frame, no newline, gone.
  {
    std::optional<Socket> Sock =
        Socket::connectTo("127.0.0.1", Daemon.D.port(), &Error);
    ASSERT_TRUE(Sock) << Error;
    ASSERT_TRUE(Sock->sendAll("{\"v\":1,\"type\":\"sub"));
    Sock->close();
  }

  // A submit whose client vanishes before asking for the result: the
  // request still runs to completion and stays queryable from a second
  // connection.
  uint64_t Id = 0;
  {
    std::optional<Socket> Sock =
        Socket::connectTo("127.0.0.1", Daemon.D.port(), &Error);
    ASSERT_TRUE(Sock) << Error;
    json::Value Submit = json::Value::object();
    std::optional<json::Value> SpecJson = testSpec(2).toJson(&Error);
    ASSERT_TRUE(SpecJson) << Error;
    Submit.set("spec", std::move(*SpecJson));
    std::optional<Frame> Accepted =
        rawRoundTrip(*Sock, server::encodeFrame("submit", std::move(Submit)));
    ASSERT_TRUE(Accepted);
    ASSERT_EQ(Accepted->Type, "accepted");
    Id = static_cast<uint64_t>(Accepted->Body.find("id")->asInt());
    Sock->close(); // vanish without collecting
  }

  std::optional<Socket> Probe =
      Socket::connectTo("127.0.0.1", Daemon.D.port(), &Error);
  ASSERT_TRUE(Probe) << Error;
  std::optional<Frame> Result = rawRoundTrip(
      *Probe, server::encodeFrame(
                  "result",
                  json::Value::object().set("id", static_cast<int64_t>(Id))));
  ASSERT_TRUE(Result);
  ASSERT_EQ(Result->Type, "result");
  EXPECT_EQ(Result->Body.find("state")->asString(), "done");
  EXPECT_NE(Result->Body.find("manifest"), nullptr);
}

TEST(DaemonTest, ShutdownFrameDrainsCleanly) {
  TestDaemon Daemon;
  ASSERT_TRUE(Daemon.Started);
  std::string Error;
  std::optional<server::DaemonClient> Client =
      server::DaemonClient::connectTo(Daemon.hostPort(), &Error);
  ASSERT_TRUE(Client) << Error;
  // Work first, so the drain has something to prove.
  ASSERT_TRUE(Client->runTask(testSpec(2), &Error)) << Error;
  EXPECT_TRUE(Client->shutdownServer(&Error)) << Error;
  EXPECT_EQ(Daemon.stop(), 0);
}
