//===- tests/HamgenTest.cpp - Hamiltonian generator tests ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hamgen/Models.h"
#include "hamgen/Molecular.h"
#include "hamgen/Registry.h"
#include "sim/Evolution.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

TEST(ModelsTest, TransverseFieldIsingStructure) {
  Hamiltonian H = makeTransverseFieldIsing(4, 1.0, 0.5);
  // 3 ZZ bonds + 4 X fields.
  EXPECT_EQ(H.numTerms(), 7u);
  EXPECT_EQ(H.numQubits(), 4u);
  size_t ZZ = 0, X = 0;
  for (const auto &T : H.terms()) {
    if (T.String.xMask() == 0) {
      ++ZZ;
      EXPECT_EQ(T.String.weight(), 2u);
      EXPECT_DOUBLE_EQ(T.Coeff, -1.0);
    } else {
      ++X;
      EXPECT_EQ(T.String.weight(), 1u);
      EXPECT_DOUBLE_EQ(T.Coeff, -0.5);
    }
  }
  EXPECT_EQ(ZZ, 3u);
  EXPECT_EQ(X, 4u);
}

TEST(ModelsTest, PeriodicChainAddsOneBond) {
  Hamiltonian Open = makeTransverseFieldIsing(5, 1.0, 0.3, false);
  Hamiltonian Ring = makeTransverseFieldIsing(5, 1.0, 0.3, true);
  EXPECT_EQ(Ring.numTerms(), Open.numTerms() + 1);
}

TEST(ModelsTest, HeisenbergTermContent) {
  Hamiltonian H = makeHeisenbergXXZ(3, 1.0, 1.0, 0.5, 0.2);
  // 2 bonds x 3 couplings + 3 fields.
  EXPECT_EQ(H.numTerms(), 9u);
  // XX terms act with X on both qubits of a bond.
  unsigned XXTerms = 0;
  for (const auto &T : H.terms())
    if (T.String.zMask() == 0 && T.String.weight() == 2)
      ++XXTerms;
  EXPECT_EQ(XXTerms, 2u);
}

TEST(ModelsTest, SYKIsHermitianWithExactTermCount) {
  RNG Rng(91);
  Hamiltonian H = makeSYK(4, 50, 1.0, Rng);
  EXPECT_EQ(H.numQubits(), 4u);
  EXPECT_EQ(H.numTerms(), 50u);
  Matrix M = H.toMatrix();
  EXPECT_NEAR(M.maxAbsDiff(M.adjoint()), 0.0, 1e-12);
}

TEST(ModelsTest, SYKDownsamplesToRequestedStrings) {
  RNG Rng(92);
  // C(8,4) = 70 possible quadruples on 4 Majorana pairs.
  Hamiltonian All = makeSYK(2, 1000, 1.0, Rng);
  EXPECT_EQ(All.numTerms(), 1u); // C(4,4) = 1 for 2 qubits (4 modes)
  RNG Rng2(93);
  Hamiltonian Some = makeSYK(3, 10, 1.0, Rng2); // C(6,4) = 15 available
  EXPECT_EQ(Some.numTerms(), 10u);
}

TEST(ModelsTest, SYKDeterministicPerSeed) {
  RNG A(94), B(94);
  Hamiltonian H1 = makeSYK(4, 20, 1.0, A);
  Hamiltonian H2 = makeSYK(4, 20, 1.0, B);
  ASSERT_EQ(H1.numTerms(), H2.numTerms());
  for (size_t I = 0; I < H1.numTerms(); ++I) {
    EXPECT_TRUE(H1.term(I).String == H2.term(I).String);
    EXPECT_DOUBLE_EQ(H1.term(I).Coeff, H2.term(I).Coeff);
  }
}

TEST(ModelsTest, RandomHamiltonianDistinctStrings) {
  RNG Rng(95);
  Hamiltonian H = makeRandomHamiltonian(6, 40, Rng);
  EXPECT_EQ(H.numTerms(), 40u);
  EXPECT_EQ(H.merged().numTerms(), 40u); // already distinct
  for (const auto &T : H.terms()) {
    EXPECT_GE(T.Coeff, 0.2);
    EXPECT_LE(T.Coeff, 1.0);
  }
}

TEST(MolecularTest, ExactTargetStringCount) {
  Hamiltonian H = makeMolecularLike(8, 60, 7);
  EXPECT_EQ(H.numQubits(), 8u);
  EXPECT_EQ(H.numTerms(), 60u);
}

TEST(MolecularTest, DeterministicPerSeed) {
  Hamiltonian A = makeMolecularLike(8, 60, 3);
  Hamiltonian B = makeMolecularLike(8, 60, 3);
  ASSERT_EQ(A.numTerms(), B.numTerms());
  for (size_t I = 0; I < A.numTerms(); ++I) {
    EXPECT_TRUE(A.term(I).String == B.term(I).String);
    EXPECT_DOUBLE_EQ(A.term(I).Coeff, B.term(I).Coeff);
  }
  Hamiltonian C = makeMolecularLike(8, 60, 4);
  bool Differs = C.numTerms() != A.numTerms();
  for (size_t I = 0; !Differs && I < A.numTerms(); ++I)
    Differs = !(A.term(I).String == C.term(I).String) ||
              A.term(I).Coeff != C.term(I).Coeff;
  EXPECT_TRUE(Differs);
}

TEST(MolecularTest, HermitianByConstruction) {
  Hamiltonian H = makeMolecularLike(6, 40, 5);
  Matrix M = H.toMatrix();
  EXPECT_NEAR(M.maxAbsDiff(M.adjoint()), 0.0, 1e-10);
}

TEST(MolecularTest, HasMolecularStringStructure) {
  // Expect plenty of diagonal (Z-only) strings from number operators and
  // density-density interactions, plus X/Y ladder strings from hopping.
  Hamiltonian H = makeMolecularLike(8, 60, 11);
  size_t Diagonal = 0, Ladder = 0;
  for (const auto &T : H.terms()) {
    if (T.String.xMask() == 0)
      ++Diagonal;
    else
      ++Ladder;
  }
  EXPECT_GT(Diagonal, 10u);
  EXPECT_GT(Ladder, 10u);
}

TEST(RegistryTest, TwelveBenchmarksInPaperOrder) {
  const auto &Specs = paperBenchmarks();
  ASSERT_EQ(Specs.size(), 12u);
  EXPECT_EQ(Specs[0].Name, "Na+");
  EXPECT_EQ(Specs[0].Qubits, 8u);
  EXPECT_EQ(Specs[0].Strings, 60u);
  EXPECT_NEAR(Specs[0].Time, M_PI / 4.0, 1e-12);
  EXPECT_EQ(Specs[9].Name, "SYK-1");
  EXPECT_EQ(Specs[9].Kind, BenchmarkKind::SYK);
  EXPECT_NEAR(Specs[9].Time, 0.15, 1e-12);
  EXPECT_EQ(Specs[11].Name, "BeH2");
  EXPECT_EQ(Specs[11].Qubits, 14u);
}

TEST(RegistryTest, FindBenchmarkByName) {
  auto Spec = findBenchmark("H2O");
  ASSERT_TRUE(Spec.has_value());
  EXPECT_EQ(Spec->Qubits, 12u);
  EXPECT_EQ(Spec->Strings, 550u);
  EXPECT_FALSE(findBenchmark("Unobtainium").has_value());
}

TEST(RegistryTest, SmallBenchmarksInstantiateWithMatchingSpecs) {
  // Keep the test fast: instantiate the 8- and 10-qubit entries.
  for (const auto &Spec : paperBenchmarks()) {
    if (Spec.Qubits > 10)
      continue;
    Hamiltonian H = makeBenchmark(Spec);
    EXPECT_EQ(H.numQubits(), Spec.Qubits) << Spec.Name;
    EXPECT_EQ(H.numTerms(), Spec.Strings) << Spec.Name;
    EXPECT_GT(H.lambda(), 0.0) << Spec.Name;
  }
}

TEST(RegistryTest, BenchmarksAreReproducible) {
  auto Spec = *findBenchmark("Na+");
  Hamiltonian A = makeBenchmark(Spec);
  Hamiltonian B = makeBenchmark(Spec);
  ASSERT_EQ(A.numTerms(), B.numTerms());
  for (size_t I = 0; I < A.numTerms(); ++I)
    EXPECT_TRUE(A.term(I).String == B.term(I).String);
}
