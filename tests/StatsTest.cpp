//===- tests/StatsTest.cpp - statistics and fitting tests ----------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/ExpFit.h"
#include "stats/Stats.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats RS;
  std::vector<double> Data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double X : Data)
    RS.add(X);
  EXPECT_EQ(RS.count(), Data.size());
  EXPECT_DOUBLE_EQ(RS.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(RS.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(RS.min(), 2.0);
  EXPECT_DOUBLE_EQ(RS.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats RS;
  RS.add(3.14);
  EXPECT_DOUBLE_EQ(RS.variance(), 0.0);
  EXPECT_DOUBLE_EQ(RS.stddev(), 0.0);
}

TEST(RunningStatsTest, AgreesWithVectorHelpers) {
  RNG Rng(31);
  std::vector<double> Data;
  RunningStats RS;
  for (int I = 0; I < 1000; ++I) {
    double X = Rng.gaussian(3.0, 2.0);
    Data.push_back(X);
    RS.add(X);
  }
  EXPECT_NEAR(RS.mean(), mean(Data), 1e-10);
  EXPECT_NEAR(RS.stddev(), stddev(Data), 1e-10);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> X = {0, 1, 2, 3, 4};
  std::vector<double> Y;
  for (double V : X)
    Y.push_back(2.5 * V - 1.0);
  LinearFitResult R = linearFit(X, Y);
  EXPECT_NEAR(R.Slope, 2.5, 1e-12);
  EXPECT_NEAR(R.Intercept, -1.0, 1e-12);
  EXPECT_NEAR(R.R2, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineRecovered) {
  RNG Rng(32);
  std::vector<double> X, Y;
  for (int I = 0; I < 500; ++I) {
    double V = I / 50.0;
    X.push_back(V);
    Y.push_back(-0.7 * V + 4.0 + 0.05 * Rng.gaussian());
  }
  LinearFitResult R = linearFit(X, Y);
  EXPECT_NEAR(R.Slope, -0.7, 0.01);
  EXPECT_NEAR(R.Intercept, 4.0, 0.05);
  EXPECT_GT(R.R2, 0.98);
}

TEST(ExpFitTest, RecoversExactParameters) {
  // y = a + e^{b x + c} with the paper's curve shape.
  const double A = 100.0, B = 8.0, C = -2.0;
  std::vector<double> X, Y;
  for (int I = 0; I <= 20; ++I) {
    double V = 0.97 + 0.0015 * I;
    X.push_back(V);
    Y.push_back(A + std::exp(B * V + C));
  }
  ExpFitResult R = expFit(X, Y);
  EXPECT_NEAR(R.eval(0.98), A + std::exp(B * 0.98 + C),
              1e-3 * (A + std::exp(B * 0.98 + C)));
  EXPECT_LT(R.SSE, 1e-6 * A * A);
}

TEST(ExpFitTest, RobustToNoise) {
  RNG Rng(33);
  const double A = 5000.0, B = 300.0, C = -290.0;
  std::vector<double> X, Y;
  for (int I = 0; I <= 40; ++I) {
    double V = 0.97 + 0.0006 * I;
    X.push_back(V);
    double Clean = A + std::exp(B * V + C);
    Y.push_back(Clean * (1.0 + 0.01 * Rng.gaussian()));
  }
  ExpFitResult R = expFit(X, Y);
  for (double V : {0.975, 0.985, 0.992}) {
    double Clean = A + std::exp(B * V + C);
    EXPECT_NEAR(R.eval(V), Clean, 0.08 * Clean);
  }
}

TEST(ExpFitTest, MonotoneIncreasingFit) {
  // The fitted curve must preserve monotonicity for interpolation use.
  std::vector<double> X = {0.97, 0.975, 0.98, 0.985, 0.99, 0.995};
  std::vector<double> Y = {100, 140, 200, 330, 560, 950};
  ExpFitResult R = expFit(X, Y);
  double Prev = R.eval(0.968);
  for (double V = 0.97; V < 0.996; V += 0.002) {
    double Cur = R.eval(V);
    EXPECT_GT(Cur, Prev);
    Prev = Cur;
  }
}
