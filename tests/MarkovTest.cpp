//===- tests/MarkovTest.cpp - Markov chain machinery tests ---------------------===//
//
// Part of the MarQSim reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "markov/Sampler.h"
#include "markov/TransitionMatrix.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace marqsim;

namespace {

/// A 4-state chain in the spirit of the paper's Example 2.1 / Fig. 4: built
/// from the figure's edge weights {0.8, 0.2, 0.4, 0.6, 0.5, 0.5, 0.3, 0.2},
/// strongly connected with self-edges, and with a stationary distribution
/// that rounds to the paper's (0.29, 0.24, 0.29, 0.18).
TransitionMatrix paperExampleChain() {
  return TransitionMatrix::fromRows({{0.2, 0.8, 0.0, 0.0},
                                     {0.0, 0.0, 0.4, 0.6},
                                     {0.5, 0.0, 0.5, 0.0},
                                     {0.5, 0.0, 0.3, 0.2}});
}

} // namespace

TEST(TransitionMatrixTest, RowStochasticValidation) {
  TransitionMatrix P = paperExampleChain();
  EXPECT_TRUE(P.isRowStochastic());
  P.at(0, 0) = 0.5; // breaks the row sum
  EXPECT_FALSE(P.isRowStochastic());
}

TEST(TransitionMatrixTest, PaperExampleStationaryDistribution) {
  // The paper reports pi = (0.29, 0.24, 0.29, 0.18) rounded to 2 digits.
  TransitionMatrix P = paperExampleChain();
  std::vector<double> Pi = P.stationaryDistribution();
  EXPECT_NEAR(Pi[0], 0.29, 0.005);
  EXPECT_NEAR(Pi[1], 0.24, 0.005);
  EXPECT_NEAR(Pi[2], 0.29, 0.005);
  EXPECT_NEAR(Pi[3], 0.18, 0.005);
  EXPECT_TRUE(P.preservesDistribution(Pi, 1e-10));
  double Sum = 0;
  for (double V : Pi)
    Sum += V;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
}

TEST(TransitionMatrixTest, PaperExampleIsStronglyConnected) {
  EXPECT_TRUE(paperExampleChain().isStronglyConnected());
}

TEST(TransitionMatrixTest, DisconnectedChainDetected) {
  TransitionMatrix P = TransitionMatrix::fromRows(
      {{1.0, 0.0}, {0.0, 1.0}}); // two absorbing states
  EXPECT_FALSE(P.isStronglyConnected());
  TransitionMatrix OneWay = TransitionMatrix::fromRows(
      {{0.5, 0.5}, {0.0, 1.0}}); // can't get back from state 1
  EXPECT_FALSE(OneWay.isStronglyConnected());
}

TEST(TransitionMatrixTest, FromStationaryIsRankOneAndValid) {
  std::vector<double> Pi = {0.5, 0.25, 0.2, 0.05};
  TransitionMatrix P = TransitionMatrix::fromStationary(Pi);
  EXPECT_TRUE(P.isRowStochastic());
  EXPECT_TRUE(P.isStronglyConnected());
  EXPECT_TRUE(P.preservesDistribution(Pi, 1e-12));
  // Rank-1: spectrum {1, 0, 0, 0} (paper Example 5.3 case 1).
  auto Eigs = P.spectrum();
  EXPECT_NEAR(std::abs(Eigs[0]), 1.0, 1e-10);
  for (size_t K = 1; K < Eigs.size(); ++K)
    EXPECT_NEAR(std::abs(Eigs[K]), 0.0, 1e-10);
  EXPECT_NEAR(P.secondEigenvalueMagnitude(), 0.0, 1e-10);
}

TEST(TransitionMatrixTest, LeftApplyMatchesManual) {
  TransitionMatrix P = paperExampleChain();
  std::vector<double> V = {1.0, 0.0, 0.0, 0.0};
  std::vector<double> Next = P.leftApply(V);
  EXPECT_DOUBLE_EQ(Next[0], 0.2);
  EXPECT_DOUBLE_EQ(Next[1], 0.8);
  EXPECT_DOUBLE_EQ(Next[3], 0.0);
}

TEST(TransitionMatrixTest, CombinePreservesStationarity) {
  // Theorem 5.2: convex combinations keep the stationary distribution.
  std::vector<double> Pi = {0.4, 0.3, 0.2, 0.1};
  TransitionMatrix A = TransitionMatrix::fromStationary(Pi);
  // A deterministic cyclic permutation also preserves the uniform part...
  // build a pi-preserving matrix by symmetrization instead:
  TransitionMatrix B(4);
  // Doubly-stochastic-style circulant does not preserve generic pi, so use
  // a lazy chain: B = identity (trivially preserves every distribution).
  for (size_t I = 0; I < 4; ++I)
    B.at(I, I) = 1.0;
  ASSERT_TRUE(B.preservesDistribution(Pi, 1e-12));
  TransitionMatrix C = TransitionMatrix::combine({&A, &B}, {0.3, 0.7});
  EXPECT_TRUE(C.isRowStochastic());
  EXPECT_TRUE(C.preservesDistribution(Pi, 1e-12));
  // Mixing in the positive matrix A restores strong connectivity.
  EXPECT_TRUE(C.isStronglyConnected());
}

TEST(TransitionMatrixTest, PermutationSpectrumOnUnitCircle) {
  TransitionMatrix P = TransitionMatrix::fromRows(
      {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}});
  auto Eigs = P.spectrum();
  for (const auto &E : Eigs)
    EXPECT_NEAR(std::abs(E), 1.0, 1e-10);
  EXPECT_NEAR(P.secondEigenvalueMagnitude(), 1.0, 1e-10);
}

TEST(TransitionMatrixTest, StationarySolveOnLazyRandomWalk) {
  // Lazy random walk on a path graph of 3 nodes; stationary known to be
  // proportional to node degrees (1, 2, 1) for the non-lazy part.
  TransitionMatrix P = TransitionMatrix::fromRows({{0.5, 0.5, 0.0},
                                                   {0.25, 0.5, 0.25},
                                                   {0.0, 0.5, 0.5}});
  std::vector<double> Pi = P.stationaryDistribution();
  EXPECT_NEAR(Pi[0], 0.25, 1e-10);
  EXPECT_NEAR(Pi[1], 0.5, 1e-10);
  EXPECT_NEAR(Pi[2], 0.25, 1e-10);
}

TEST(TransitionMatrixTest, MixedPermutationSpectrumIsAnalytic) {
  // P = (1 - theta) * U + theta * Pi_cycle with U the rank-1 uniform
  // matrix and Pi_cycle the n-cycle: on the complement of the stationary
  // direction, U vanishes, so the non-leading eigenvalues are exactly
  // theta times the non-trivial n-th roots of unity: |lambda_k| = theta.
  const size_t N = 5;
  const double Theta = 0.37;
  TransitionMatrix P(N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      P.at(I, J) = (1.0 - Theta) / N + (J == (I + 1) % N ? Theta : 0.0);
  ASSERT_TRUE(P.isRowStochastic());
  auto Eigs = P.spectrum();
  EXPECT_NEAR(std::abs(Eigs[0]), 1.0, 1e-10);
  for (size_t K = 1; K < N; ++K)
    EXPECT_NEAR(std::abs(Eigs[K]), Theta, 1e-9);
}

struct ChainSweepCase {
  size_t States;
  uint64_t Seed;
};

class RandomChainSweep : public ::testing::TestWithParam<ChainSweepCase> {};

TEST_P(RandomChainSweep, StationarySolveAndSpectraInvariants) {
  const auto &Case = GetParam();
  RNG Rng(Case.Seed);
  TransitionMatrix P(Case.States);
  for (size_t I = 0; I < Case.States; ++I) {
    double Sum = 0;
    for (size_t J = 0; J < Case.States; ++J) {
      P.at(I, J) = Rng.uniform() + 1e-4;
      Sum += P.at(I, J);
    }
    for (size_t J = 0; J < Case.States; ++J)
      P.at(I, J) /= Sum;
  }
  ASSERT_TRUE(P.isRowStochastic());
  ASSERT_TRUE(P.isStronglyConnected());
  // The solved stationary distribution is a fixed point and normalized.
  std::vector<double> Pi = P.stationaryDistribution();
  double Sum = 0;
  for (double V : Pi) {
    EXPECT_GE(V, -1e-12);
    Sum += V;
  }
  EXPECT_NEAR(Sum, 1.0, 1e-10);
  EXPECT_TRUE(P.preservesDistribution(Pi, 1e-9));
  // Spectral invariants of a stochastic matrix.
  auto Eigs = P.spectrum();
  EXPECT_NEAR(std::abs(Eigs[0]), 1.0, 1e-8);
  for (const auto &E : Eigs)
    EXPECT_LE(std::abs(E), 1.0 + 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomChainSweep,
    ::testing::Values(ChainSweepCase{2, 1}, ChainSweepCase{3, 2},
                      ChainSweepCase{5, 3}, ChainSweepCase{8, 4},
                      ChainSweepCase{13, 5}, ChainSweepCase{21, 6},
                      ChainSweepCase{34, 7}, ChainSweepCase{55, 8}));

TEST(AliasSamplerTest, MatchesDistribution) {
  std::vector<double> W = {0.5, 0.25, 0.2, 0.05};
  AliasSampler S(W);
  RNG Rng(51);
  std::vector<int> Counts(4, 0);
  const int N = 200000;
  for (int I = 0; I < N; ++I)
    ++Counts[S.sample(Rng)];
  for (size_t K = 0; K < 4; ++K)
    EXPECT_NEAR(Counts[K] / double(N), W[K], 0.005) << "index " << K;
}

TEST(AliasSamplerTest, HandlesZeroWeights) {
  std::vector<double> W = {0.0, 1.0, 0.0, 3.0};
  AliasSampler S(W);
  RNG Rng(52);
  for (int I = 0; I < 10000; ++I) {
    size_t K = S.sample(Rng);
    EXPECT_TRUE(K == 1 || K == 3);
  }
}

TEST(AliasSamplerTest, SingleOutcome) {
  AliasSampler S(std::vector<double>{2.0});
  RNG Rng(53);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(S.sample(Rng), 0u);
}

TEST(CDFSamplerTest, MatchesDistribution) {
  std::vector<double> W = {1.0, 2.0, 3.0, 4.0};
  CDFSampler S(W);
  RNG Rng(54);
  std::vector<int> Counts(4, 0);
  const int N = 200000;
  for (int I = 0; I < N; ++I)
    ++Counts[S.sample(Rng)];
  for (size_t K = 0; K < 4; ++K)
    EXPECT_NEAR(Counts[K] / double(N), W[K] / 10.0, 0.005);
}

TEST(CDFSamplerTest, AgreesWithAliasInDistribution) {
  std::vector<double> W = {0.15, 0.35, 0.1, 0.4};
  AliasSampler A(W);
  CDFSampler C(W);
  RNG R1(55), R2(55);
  std::vector<int> CA(4, 0), CC(4, 0);
  const int N = 100000;
  for (int I = 0; I < N; ++I) {
    ++CA[A.sample(R1)];
    ++CC[C.sample(R2)];
  }
  for (size_t K = 0; K < 4; ++K)
    EXPECT_NEAR(CA[K] / double(N), CC[K] / double(N), 0.01);
}

TEST(MarkovChainSamplerTest, FirstDrawFollowsInitialDistribution) {
  TransitionMatrix P = TransitionMatrix::fromRows({{0, 1}, {1, 0}});
  std::vector<double> Init = {1.0, 0.0};
  RNG Rng(56);
  for (int Trial = 0; Trial < 50; ++Trial) {
    MarkovChainSampler S(P, Init);
    EXPECT_EQ(S.next(Rng), 0u);
    EXPECT_EQ(S.next(Rng), 1u); // deterministic alternation
    EXPECT_EQ(S.next(Rng), 0u);
  }
}

TEST(MarkovChainSamplerTest, EmpiricalTransitionFrequencies) {
  TransitionMatrix P = paperExampleChain();
  std::vector<double> Pi = P.stationaryDistribution();
  MarkovChainSampler S(P, Pi);
  RNG Rng(57);
  const int N = 300000;
  std::vector<std::vector<int>> Counts(4, std::vector<int>(4, 0));
  std::vector<int> StateCounts(4, 0);
  size_t Prev = S.next(Rng);
  for (int I = 1; I < N; ++I) {
    size_t Cur = S.next(Rng);
    ++Counts[Prev][Cur];
    ++StateCounts[Prev];
    Prev = Cur;
  }
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J) {
      double Freq = Counts[I][J] / double(StateCounts[I]);
      EXPECT_NEAR(Freq, P.at(I, J), 0.01) << I << "->" << J;
    }
}

TEST(MarkovChainSamplerTest, LongRunVisitsMatchStationary) {
  TransitionMatrix P = paperExampleChain();
  std::vector<double> Pi = P.stationaryDistribution();
  MarkovChainSampler S(P, Pi);
  RNG Rng(58);
  std::vector<int> Visits(4, 0);
  const int N = 300000;
  for (int I = 0; I < N; ++I)
    ++Visits[S.next(Rng)];
  for (size_t K = 0; K < 4; ++K)
    EXPECT_NEAR(Visits[K] / double(N), Pi[K], 0.01);
}
